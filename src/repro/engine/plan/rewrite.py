"""Expression rewriting for the aggregation pipeline.

After binding, SELECT/HAVING/ORDER BY expressions over a grouped query
must be rewritten so that group keys and aggregate calls become
positional references into the aggregation operator's output layout
(group values first, aggregate results after).
"""

from __future__ import annotations

from typing import Callable

from repro.engine.errors import PlanError
from repro.engine.expr import (
    AggCall,
    BetweenExpr,
    BinOp,
    CaseExpr,
    ColumnRef,
    DateArithExpr,
    Expr,
    ExtractExpr,
    FuncCall,
    InListExpr,
    InputRef,
    IsNullExpr,
    LikeExpr,
    NegExpr,
    NotExpr,
    SubqueryExpr,
)
from repro.engine.plan.fingerprint import fingerprint

Mapper = Callable[[Expr], Expr | None]


def rewrite(expr: Expr, mapper: Mapper) -> Expr:
    """Bottom-up in-place rewrite; ``mapper`` may replace any node."""
    replacement = mapper(expr)
    if replacement is not None:
        return replacement
    if isinstance(expr, BinOp):
        expr.left = rewrite(expr.left, mapper)
        expr.right = rewrite(expr.right, mapper)
    elif isinstance(expr, (NotExpr, NegExpr, IsNullExpr, ExtractExpr)):
        expr.operand = rewrite(expr.operand, mapper)
    elif isinstance(expr, BetweenExpr):
        expr.operand = rewrite(expr.operand, mapper)
        expr.low = rewrite(expr.low, mapper)
        expr.high = rewrite(expr.high, mapper)
    elif isinstance(expr, InListExpr):
        expr.operand = rewrite(expr.operand, mapper)
        expr.items = [rewrite(item, mapper) for item in expr.items]
    elif isinstance(expr, LikeExpr):
        expr.operand = rewrite(expr.operand, mapper)
        expr.pattern = rewrite(expr.pattern, mapper)
    elif isinstance(expr, CaseExpr):
        expr.branches = [
            (rewrite(cond, mapper), rewrite(value, mapper))
            for cond, value in expr.branches
        ]
        if expr.default is not None:
            expr.default = rewrite(expr.default, mapper)
    elif isinstance(expr, DateArithExpr):
        expr.date_expr = rewrite(expr.date_expr, mapper)
    elif isinstance(expr, FuncCall):
        expr.args = [rewrite(arg, mapper) for arg in expr.args]
    elif isinstance(expr, SubqueryExpr):
        if expr.operand is not None:
            expr.operand = rewrite(expr.operand, mapper)
    return expr


class AggRegistry:
    """Collects distinct aggregate calls and assigns output positions."""

    def __init__(self, group_count: int) -> None:
        self.group_count = group_count
        self.calls: list[AggCall] = []
        self._by_fingerprint: dict[tuple, int] = {}

    def position_of(self, call: AggCall) -> int:
        key = fingerprint(call)
        index = self._by_fingerprint.get(key)
        if index is None:
            index = len(self.calls)
            self.calls.append(call)
            self._by_fingerprint[key] = index
        return self.group_count + index


def rewrite_for_aggregation(
    expr: Expr,
    group_positions: dict[tuple, int],
    registry: AggRegistry,
    context: str,
) -> Expr:
    """Rewrite one post-aggregation expression.

    Group-key subexpressions become positional refs, aggregate calls
    register in ``registry``.  Any column reference that survives is an
    error — it is neither grouped nor aggregated.
    """

    def mapper(node: Expr) -> Expr | None:
        key_position = group_positions.get(fingerprint(node))
        if key_position is not None and not isinstance(node, AggCall):
            return InputRef(key_position)
        if isinstance(node, AggCall):
            return InputRef(registry.position_of(node))
        return None

    rewritten = rewrite(expr, mapper)
    for node in rewritten.walk():
        if isinstance(node, ColumnRef) and node._outer_cell is None:
            raise PlanError(
                f"{context}: column {node.display_name} must appear in "
                f"GROUP BY or inside an aggregate"
            )
    return rewritten


def contains_aggregate(expr: Expr) -> bool:
    return any(isinstance(node, AggCall) for node in expr.walk())
