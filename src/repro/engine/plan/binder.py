"""Expression binding with correlation and subquery hooks."""

from __future__ import annotations

from typing import Callable

from repro.engine.errors import PlanError
from repro.engine.expr import (
    ColumnRef,
    CorrelationCell,
    Expr,
    OutputSchema,
    SubqueryExpr,
)

SubqueryCompiler = Callable[[SubqueryExpr, OutputSchema], None]


def bind_expr(
    expr: Expr,
    schema: OutputSchema,
    compile_subquery: SubqueryCompiler | None = None,
    outer_schema: OutputSchema | None = None,
    cell: CorrelationCell | None = None,
) -> bool:
    """Bind every column reference in ``expr`` against ``schema``.

    References not found in ``schema`` fall back to ``outer_schema``
    (becoming correlated references through ``cell``).  Embedded
    subqueries are handed to ``compile_subquery`` with the schema they
    correlate against.  Returns True if any reference was correlated.
    """
    correlated = False
    for node in expr.walk():
        if isinstance(node, ColumnRef):
            if node.bind_or_outer(schema, outer_schema, cell):
                correlated = True
        elif isinstance(node, SubqueryExpr):
            if node.executor is None:
                if compile_subquery is None:
                    raise PlanError(
                        "subquery encountered without a compiler"
                    )
                compile_subquery(node, schema)
    return correlated


def referenced_bindings(expr: Expr, schemas: dict[str, OutputSchema]) -> set[str]:
    """Which FROM bindings does ``expr`` reference?

    ``schemas`` maps binding name -> that relation's schema.  Used by
    the planner to classify WHERE conjuncts before any binding happens.
    Unresolvable references return the special marker ``"?"`` so callers
    can route the conjunct to the post-join/correlated bucket.
    """
    out: set[str] = set()
    for node in expr.walk():
        if isinstance(node, SubqueryExpr):
            out.add("?")
        if not isinstance(node, ColumnRef):
            continue
        found = None
        for binding, schema in schemas.items():
            if node.qualifier is not None:
                if node.qualifier.lower() == binding and \
                        schema.try_resolve(None, node.name) is not None:
                    found = binding
                    break
            elif schema.try_resolve(None, node.name) is not None:
                if found is not None:
                    found = "?"  # ambiguous: defer to real binding
                    break
                found = binding
        out.add(found if found is not None else "?")
    return out
