"""Expression AST and evaluator.

Expressions are produced by the SQL parser (or constructed directly by
the R/3 layers), *bound* against an :class:`OutputSchema` that maps
qualified column names to tuple positions, and then evaluated per row.

NULL is represented as Python ``None`` with SQL three-valued logic:
comparisons involving NULL yield NULL, AND/OR follow Kleene logic, and
filter predicates treat NULL as not-satisfied.
"""

from __future__ import annotations

import datetime
import re
from typing import Callable, Sequence

from repro.engine.errors import ExecutionError, PlanError


class OutputSchema:
    """Names (optionally qualified) of an operator's output columns.

    ``entries`` is a list of ``(qualifier, name)`` pairs; qualifier may
    be None.  Resolution is case-insensitive.  An unqualified lookup
    that matches several entries is ambiguous unless all matches refer
    to the same position.
    """

    def __init__(self, entries: Sequence[tuple[str | None, str]]) -> None:
        self.entries = [
            (q.lower() if q else None, n.lower()) for q, n in entries
        ]

    def __len__(self) -> int:
        return len(self.entries)

    def resolve(self, qualifier: str | None, name: str) -> int:
        """Return the tuple position of a column reference."""
        name = name.lower()
        qualifier = qualifier.lower() if qualifier else None
        matches = [
            i
            for i, (q, n) in enumerate(self.entries)
            if n == name and (qualifier is None or q == qualifier)
        ]
        if not matches:
            ref = f"{qualifier}.{name}" if qualifier else name
            raise PlanError(f"unknown column {ref}")
        if len(matches) > 1:
            ref = f"{qualifier}.{name}" if qualifier else name
            raise PlanError(f"ambiguous column {ref}")
        return matches[0]

    def try_resolve(self, qualifier: str | None, name: str) -> int | None:
        try:
            return self.resolve(qualifier, name)
        except PlanError:
            return None

    def concat(self, other: "OutputSchema") -> "OutputSchema":
        return OutputSchema(self.entries + other.entries)

    @property
    def names(self) -> list[str]:
        return [n for _, n in self.entries]


class Expr:
    """Base class for expression nodes."""

    def bind(self, schema: OutputSchema) -> "Expr":
        """Resolve column references; returns self for chaining."""
        raise NotImplementedError

    def eval(self, row: tuple, params: Sequence[object]) -> object:
        raise NotImplementedError

    def children(self) -> list["Expr"]:
        return []

    def walk(self):
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


class Literal(Expr):
    def __init__(self, value: object) -> None:
        self.value = value

    def bind(self, schema: OutputSchema) -> "Literal":
        return self

    def eval(self, row: tuple, params: Sequence[object]) -> object:
        return self.value

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"


class ParamRef(Expr):
    """A ``?`` parameter marker; ``index`` is its 0-based position."""

    def __init__(self, index: int) -> None:
        self.index = index

    def bind(self, schema: OutputSchema) -> "ParamRef":
        return self

    def eval(self, row: tuple, params: Sequence[object]) -> object:
        try:
            return params[self.index]
        except IndexError:
            raise ExecutionError(
                f"missing value for parameter {self.index + 1}"
            ) from None

    def __repr__(self) -> str:
        return f"ParamRef({self.index})"


class CorrelationCell:
    """Mutable slot carrying the current outer row into a subplan."""

    __slots__ = ("row",)

    def __init__(self) -> None:
        self.row: tuple = ()


class ColumnRef(Expr):
    def __init__(self, qualifier: str | None, name: str) -> None:
        self.qualifier = qualifier
        self.name = name
        self._position: int | None = None
        self._outer_cell: CorrelationCell | None = None
        self._outer_position: int | None = None

    def bind(self, schema: OutputSchema) -> "ColumnRef":
        self._position = schema.resolve(self.qualifier, self.name)
        self._outer_cell = None
        return self

    def bind_or_outer(
        self,
        schema: OutputSchema,
        outer_schema: "OutputSchema | None",
        cell: "CorrelationCell | None",
    ) -> bool:
        """Bind against ``schema``; fall back to the outer query's schema.

        Returns True when the reference turned out to be correlated.
        A reference already pinned to an outer row (by the planner's
        correlated-sarg extraction) stays pinned.
        """
        if self._outer_cell is not None:
            return True
        position = schema.try_resolve(self.qualifier, self.name)
        if position is not None:
            self._position = position
            self._outer_cell = None
            return False
        if outer_schema is not None and cell is not None:
            outer_position = outer_schema.try_resolve(self.qualifier, self.name)
            if outer_position is not None:
                self._outer_cell = cell
                self._outer_position = outer_position
                return True
        raise PlanError(f"unknown column {self.display_name}")

    def eval(self, row: tuple, params: Sequence[object]) -> object:
        if self._outer_cell is not None:
            assert self._outer_position is not None
            return self._outer_cell.row[self._outer_position]
        if self._position is None:
            raise ExecutionError(f"unbound column {self.display_name}")
        return row[self._position]

    @property
    def display_name(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name

    def __repr__(self) -> str:
        return f"ColumnRef({self.display_name})"


class InputRef(Expr):
    """Direct positional reference (used after planner rewrites)."""

    def __init__(self, position: int) -> None:
        self.position = position

    def bind(self, schema: OutputSchema) -> "InputRef":
        return self

    def eval(self, row: tuple, params: Sequence[object]) -> object:
        return row[self.position]

    def __repr__(self) -> str:
        return f"InputRef({self.position})"


def _is_null(value: object) -> bool:
    return value is None


def _compare(op: str, left: object, right: object) -> object:
    if left is None or right is None:
        return None
    try:
        if op == "=":
            return left == right
        if op in ("<>", "!="):
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError as exc:
        raise ExecutionError(f"cannot compare {left!r} {op} {right!r}") from exc
    raise AssertionError(f"unknown comparison {op}")


def _arith(op: str, left: object, right: object) -> object:
    if left is None or right is None:
        return None
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise ExecutionError("division by zero")
            return left / right
    except TypeError as exc:
        raise ExecutionError(f"cannot evaluate {left!r} {op} {right!r}") from exc
    raise AssertionError(f"unknown arithmetic {op}")


class BinOp(Expr):
    """Binary operator: comparison, arithmetic, AND/OR."""

    COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}
    ARITHMETIC = {"+", "-", "*", "/"}

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        self.op = op.upper() if op.upper() in ("AND", "OR") else op
        self.left = left
        self.right = right

    def bind(self, schema: OutputSchema) -> "BinOp":
        self.left = self.left.bind(schema)
        self.right = self.right.bind(schema)
        return self

    def children(self) -> list[Expr]:
        return [self.left, self.right]

    def eval(self, row: tuple, params: Sequence[object]) -> object:
        op = self.op
        if op == "AND":
            left = self.left.eval(row, params)
            if left is False:
                return False
            right = self.right.eval(row, params)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if op == "OR":
            left = self.left.eval(row, params)
            if left is True:
                return True
            right = self.right.eval(row, params)
            if right is True:
                return True
            if left is None or right is None:
                return None
            return False
        left = self.left.eval(row, params)
        right = self.right.eval(row, params)
        if op in self.COMPARISONS:
            return _compare(op, left, right)
        if op in self.ARITHMETIC:
            return _arith(op, left, right)
        raise AssertionError(f"unknown operator {op}")

    def __repr__(self) -> str:
        return f"BinOp({self.left!r} {self.op} {self.right!r})"


class NotExpr(Expr):
    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def bind(self, schema: OutputSchema) -> "NotExpr":
        self.operand = self.operand.bind(schema)
        return self

    def children(self) -> list[Expr]:
        return [self.operand]

    def eval(self, row: tuple, params: Sequence[object]) -> object:
        value = self.operand.eval(row, params)
        if value is None:
            return None
        return not value


class NegExpr(Expr):
    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def bind(self, schema: OutputSchema) -> "NegExpr":
        self.operand = self.operand.bind(schema)
        return self

    def children(self) -> list[Expr]:
        return [self.operand]

    def eval(self, row: tuple, params: Sequence[object]) -> object:
        value = self.operand.eval(row, params)
        if value is None:
            return None
        return -value


class IsNullExpr(Expr):
    def __init__(self, operand: Expr, negated: bool = False) -> None:
        self.operand = operand
        self.negated = negated

    def bind(self, schema: OutputSchema) -> "IsNullExpr":
        self.operand = self.operand.bind(schema)
        return self

    def children(self) -> list[Expr]:
        return [self.operand]

    def eval(self, row: tuple, params: Sequence[object]) -> object:
        is_null = self.operand.eval(row, params) is None
        return not is_null if self.negated else is_null


class BetweenExpr(Expr):
    def __init__(self, operand: Expr, low: Expr, high: Expr,
                 negated: bool = False) -> None:
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated

    def bind(self, schema: OutputSchema) -> "BetweenExpr":
        self.operand = self.operand.bind(schema)
        self.low = self.low.bind(schema)
        self.high = self.high.bind(schema)
        return self

    def children(self) -> list[Expr]:
        return [self.operand, self.low, self.high]

    def eval(self, row: tuple, params: Sequence[object]) -> object:
        value = self.operand.eval(row, params)
        low = self.low.eval(row, params)
        high = self.high.eval(row, params)
        if value is None or low is None or high is None:
            return None
        result = low <= value <= high
        return not result if self.negated else result


class InListExpr(Expr):
    def __init__(self, operand: Expr, items: list[Expr],
                 negated: bool = False) -> None:
        self.operand = operand
        self.items = items
        self.negated = negated

    def bind(self, schema: OutputSchema) -> "InListExpr":
        self.operand = self.operand.bind(schema)
        self.items = [item.bind(schema) for item in self.items]
        return self

    def children(self) -> list[Expr]:
        return [self.operand, *self.items]

    def eval(self, row: tuple, params: Sequence[object]) -> object:
        value = self.operand.eval(row, params)
        if value is None:
            return None
        saw_null = False
        for item in self.items:
            candidate = item.eval(row, params)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                return False if self.negated else True
        if saw_null:
            return None
        return True if self.negated else False


def like_to_regex(pattern: str) -> re.Pattern[str]:
    """Compile a SQL LIKE pattern (``%``, ``_``) to an anchored regex."""
    out = ["^"]
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    out.append("$")
    return re.compile("".join(out), re.DOTALL)


class LikeExpr(Expr):
    def __init__(self, operand: Expr, pattern: Expr,
                 negated: bool = False) -> None:
        self.operand = operand
        self.pattern = pattern
        self.negated = negated
        self._compiled: re.Pattern[str] | None = None
        if isinstance(pattern, Literal) and isinstance(pattern.value, str):
            self._compiled = like_to_regex(pattern.value)

    def bind(self, schema: OutputSchema) -> "LikeExpr":
        self.operand = self.operand.bind(schema)
        self.pattern = self.pattern.bind(schema)
        return self

    def children(self) -> list[Expr]:
        return [self.operand, self.pattern]

    def eval(self, row: tuple, params: Sequence[object]) -> object:
        value = self.operand.eval(row, params)
        if value is None:
            return None
        if self._compiled is not None:
            regex = self._compiled
        else:
            pattern = self.pattern.eval(row, params)
            if pattern is None:
                return None
            regex = like_to_regex(pattern)
        matched = regex.match(value) is not None
        return not matched if self.negated else matched


class CaseExpr(Expr):
    """Searched CASE: WHEN cond THEN value ... [ELSE value] END."""

    def __init__(self, branches: list[tuple[Expr, Expr]],
                 default: Expr | None) -> None:
        self.branches = branches
        self.default = default

    def bind(self, schema: OutputSchema) -> "CaseExpr":
        self.branches = [
            (cond.bind(schema), value.bind(schema))
            for cond, value in self.branches
        ]
        if self.default is not None:
            self.default = self.default.bind(schema)
        return self

    def children(self) -> list[Expr]:
        out: list[Expr] = []
        for cond, value in self.branches:
            out.extend((cond, value))
        if self.default is not None:
            out.append(self.default)
        return out

    def eval(self, row: tuple, params: Sequence[object]) -> object:
        for cond, value in self.branches:
            if cond.eval(row, params) is True:
                return value.eval(row, params)
        if self.default is not None:
            return self.default.eval(row, params)
        return None


class ExtractExpr(Expr):
    """EXTRACT(YEAR|MONTH|DAY FROM date_expr)."""

    FIELDS = ("YEAR", "MONTH", "DAY")

    def __init__(self, field: str, operand: Expr) -> None:
        field = field.upper()
        if field not in self.FIELDS:
            raise PlanError(f"unsupported EXTRACT field {field}")
        self.field = field
        self.operand = operand

    def bind(self, schema: OutputSchema) -> "ExtractExpr":
        self.operand = self.operand.bind(schema)
        return self

    def children(self) -> list[Expr]:
        return [self.operand]

    def eval(self, row: tuple, params: Sequence[object]) -> object:
        value = self.operand.eval(row, params)
        if value is None:
            return None
        if not isinstance(value, datetime.date):
            raise ExecutionError(f"EXTRACT from non-date {value!r}")
        if self.field == "YEAR":
            return value.year
        if self.field == "MONTH":
            return value.month
        return value.day


class IntervalLiteral(Expr):
    """INTERVAL 'n' DAY|MONTH|YEAR — only usable with +/- on dates."""

    UNITS = ("DAY", "MONTH", "YEAR")

    def __init__(self, amount: int, unit: str) -> None:
        unit = unit.upper().rstrip("S")
        if unit not in self.UNITS:
            raise PlanError(f"unsupported interval unit {unit}")
        self.amount = amount
        self.unit = unit

    def bind(self, schema: OutputSchema) -> "IntervalLiteral":
        return self

    def eval(self, row: tuple, params: Sequence[object]) -> object:
        return self

    def add_to(self, date: datetime.date, sign: int) -> datetime.date:
        amount = self.amount * sign
        if self.unit == "DAY":
            return date + datetime.timedelta(days=amount)
        if self.unit == "MONTH":
            month0 = date.month - 1 + amount
            year = date.year + month0 // 12
            month = month0 % 12 + 1
            day = min(date.day, _days_in_month(year, month))
            return datetime.date(year, month, day)
        year = date.year + amount
        day = min(date.day, _days_in_month(year, date.month))
        return datetime.date(year, date.month, day)


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        return 31
    first_next = datetime.date(year + (month == 12), month % 12 + 1, 1)
    return (first_next - datetime.timedelta(days=1)).day


class DateArithExpr(Expr):
    """date ± interval (produced by the parser for +/- with intervals)."""

    def __init__(self, date_expr: Expr, interval: IntervalLiteral,
                 sign: int) -> None:
        self.date_expr = date_expr
        self.interval = interval
        self.sign = sign

    def bind(self, schema: OutputSchema) -> "DateArithExpr":
        self.date_expr = self.date_expr.bind(schema)
        return self

    def children(self) -> list[Expr]:
        return [self.date_expr]

    def eval(self, row: tuple, params: Sequence[object]) -> object:
        value = self.date_expr.eval(row, params)
        if value is None:
            return None
        if not isinstance(value, datetime.date):
            raise ExecutionError(f"interval arithmetic on non-date {value!r}")
        return self.interval.add_to(value, self.sign)


class FuncCall(Expr):
    """Scalar function call (SUBSTRING, UPPER, LOWER, ABS, ROUND)."""

    def __init__(self, name: str, args: list[Expr]) -> None:
        self.name = name.upper()
        self.args = args

    def bind(self, schema: OutputSchema) -> "FuncCall":
        self.args = [arg.bind(schema) for arg in self.args]
        return self

    def children(self) -> list[Expr]:
        return list(self.args)

    def eval(self, row: tuple, params: Sequence[object]) -> object:
        values = [arg.eval(row, params) for arg in self.args]
        if any(v is None for v in values):
            return None
        name = self.name
        if name == "SUBSTRING":
            text, start = values[0], int(values[1])
            length = int(values[2]) if len(values) > 2 else None
            begin = start - 1
            if length is None:
                return text[begin:]
            return text[begin:begin + length]
        if name == "UPPER":
            return values[0].upper()
        if name == "LOWER":
            return values[0].lower()
        if name == "ABS":
            return abs(values[0])
        if name == "ROUND":
            digits = int(values[1]) if len(values) > 1 else 0
            return round(values[0], digits)
        if name == "CONCAT":
            return "".join(str(v) for v in values)
        raise ExecutionError(f"unknown function {name}")


class AggCall(Expr):
    """Aggregate function reference inside a SELECT/HAVING expression.

    The planner extracts these, computes them in the aggregation
    operator, and replaces them with :class:`InputRef`s; evaluating an
    unrewritten AggCall is a planner bug.
    """

    FUNCTIONS = ("SUM", "AVG", "COUNT", "MIN", "MAX")

    def __init__(self, func: str, arg: Expr | None,
                 distinct: bool = False) -> None:
        func = func.upper()
        if func not in self.FUNCTIONS:
            raise PlanError(f"unknown aggregate {func}")
        self.func = func
        self.arg = arg  # None means COUNT(*)
        self.distinct = distinct

    def bind(self, schema: OutputSchema) -> "AggCall":
        if self.arg is not None:
            self.arg = self.arg.bind(schema)
        return self

    def children(self) -> list[Expr]:
        return [self.arg] if self.arg is not None else []

    def eval(self, row: tuple, params: Sequence[object]) -> object:
        raise ExecutionError(
            f"aggregate {self.func} evaluated outside aggregation"
        )

    def __repr__(self) -> str:
        inner = "*" if self.arg is None else repr(self.arg)
        prefix = "DISTINCT " if self.distinct else ""
        return f"AggCall({self.func}({prefix}{inner}))"


class SubqueryExpr(Expr):
    """Scalar / EXISTS / IN subquery.

    The parser stores the raw subquery AST in ``query``; the planner
    compiles it and installs ``executor``: a callable
    ``(outer_row, params) -> value`` (scalar/exists) or an iterable of
    values (IN).  ``mode`` is one of ``scalar``, ``exists``, ``in``.
    """

    MODES = ("scalar", "exists", "in")

    def __init__(self, query: object, mode: str,
                 operand: Expr | None = None, negated: bool = False) -> None:
        if mode not in self.MODES:
            raise PlanError(f"bad subquery mode {mode}")
        self.query = query
        self.mode = mode
        self.operand = operand
        self.negated = negated
        self.executor: Callable[[tuple, Sequence[object]], object] | None = None

    def bind(self, schema: OutputSchema) -> "SubqueryExpr":
        if self.operand is not None:
            self.operand = self.operand.bind(schema)
        return self

    def children(self) -> list[Expr]:
        return [self.operand] if self.operand is not None else []

    def eval(self, row: tuple, params: Sequence[object]) -> object:
        if self.executor is None:
            raise ExecutionError("subquery was never compiled by the planner")
        if self.mode == "scalar":
            return self.executor(row, params)
        if self.mode == "exists":
            found = bool(self.executor(row, params))
            return not found if self.negated else found
        # IN subquery
        value = self.operand.eval(row, params) if self.operand else None
        if value is None:
            return None
        values = self.executor(row, params)
        saw_null = False
        for candidate in values:
            if candidate is None:
                saw_null = True
            elif candidate == value:
                return False if self.negated else True
        if saw_null:
            return None
        return True if self.negated else False


def predicate_holds(expr: Expr, row: tuple,
                    params: Sequence[object]) -> bool:
    """SQL filter semantics: NULL counts as not-satisfied."""
    return expr.eval(row, params) is True


def split_conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: Sequence[Expr]) -> Expr | None:
    """Rebuild a single predicate from conjuncts (None when empty)."""
    result: Expr | None = None
    for conjunct in conjuncts:
        result = conjunct if result is None else BinOp("AND", result, conjunct)
    return result
