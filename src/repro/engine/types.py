"""SQL type system.

Types carry the on-disk byte width used by the storage accountant — the
paper's Table 2 (10x data inflation, 8x index inflation) is a direct
consequence of byte widths: SAP R/3 stores keys as 16-byte CHAR strings
where the TPC-D schema uses 4-byte integers.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass

from repro.engine.errors import TypeError_


class TypeKind(enum.Enum):
    INTEGER = "INTEGER"
    DECIMAL = "DECIMAL"
    CHAR = "CHAR"
    VARCHAR = "VARCHAR"
    DATE = "DATE"


@dataclass(frozen=True)
class SqlType:
    """A SQL column type with storage width semantics.

    ``length`` is the declared length for CHAR/VARCHAR and ignored for
    the fixed-width types.  ``scale`` is only meaningful for DECIMAL.
    """

    kind: TypeKind
    length: int = 0
    scale: int = 0

    # -- constructors -------------------------------------------------

    @staticmethod
    def integer() -> "SqlType":
        return SqlType(TypeKind.INTEGER)

    @staticmethod
    def decimal(precision: int = 15, scale: int = 2) -> "SqlType":
        return SqlType(TypeKind.DECIMAL, length=precision, scale=scale)

    @staticmethod
    def char(length: int) -> "SqlType":
        return SqlType(TypeKind.CHAR, length=length)

    @staticmethod
    def varchar(length: int) -> "SqlType":
        return SqlType(TypeKind.VARCHAR, length=length)

    @staticmethod
    def date() -> "SqlType":
        return SqlType(TypeKind.DATE)

    # -- storage ------------------------------------------------------

    @property
    def byte_width(self) -> int:
        """On-disk width in bytes (average width for VARCHAR)."""
        if self.kind is TypeKind.INTEGER:
            return 4
        if self.kind is TypeKind.DECIMAL:
            return 8
        if self.kind is TypeKind.CHAR:
            return self.length
        if self.kind is TypeKind.VARCHAR:
            # Assume half-full variable strings plus a 2-byte length.
            return max(1, self.length // 2) + 2
        if self.kind is TypeKind.DATE:
            return 4
        raise AssertionError(f"unhandled kind {self.kind}")

    # -- value handling ------------------------------------------------

    def validate(self, value: object) -> object:
        """Coerce/validate a Python value for this type; None passes."""
        if value is None:
            return None
        if self.kind is TypeKind.INTEGER:
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeError_(f"expected int, got {value!r}")
            return value
        if self.kind is TypeKind.DECIMAL:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeError_(f"expected numeric, got {value!r}")
            return float(value)
        if self.kind in (TypeKind.CHAR, TypeKind.VARCHAR):
            if not isinstance(value, str):
                raise TypeError_(f"expected str, got {value!r}")
            if self.kind is TypeKind.CHAR and len(value) > self.length:
                raise TypeError_(
                    f"string of length {len(value)} exceeds CHAR({self.length})"
                )
            if self.kind is TypeKind.VARCHAR and len(value) > self.length:
                raise TypeError_(
                    f"string of length {len(value)} exceeds VARCHAR({self.length})"
                )
            return value
        if self.kind is TypeKind.DATE:
            if isinstance(value, datetime.date):
                return value
            if isinstance(value, str):
                return datetime.date.fromisoformat(value)
            raise TypeError_(f"expected date, got {value!r}")
        raise AssertionError(f"unhandled kind {self.kind}")

    def __str__(self) -> str:
        if self.kind in (TypeKind.CHAR, TypeKind.VARCHAR):
            return f"{self.kind.value}({self.length})"
        if self.kind is TypeKind.DECIMAL:
            return f"DECIMAL({self.length},{self.scale})"
        return self.kind.value
