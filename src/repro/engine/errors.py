"""Engine exception hierarchy.

Two branches matter for robustness handling:

* :class:`TransientError` — the operation failed for a reason that a
  retry (possibly after a backoff) can plausibly fix: a dropped
  app-server/DB connection, a transient disk I/O error, a statement
  killed by a timeout.  The DBIF and the disk model retry these.
* :class:`PermanentError` — retrying is pointless: malformed SQL,
  unknown catalog objects, constraint violations.  These propagate.

Everything still derives from :class:`EngineError`, so existing
``except EngineError`` sites keep working unchanged.
"""


class EngineError(Exception):
    """Base class for all engine errors."""


class TransientError(EngineError):
    """An error a retry can plausibly fix (fault-injection class)."""


class PermanentError(EngineError):
    """An error retrying cannot fix; must propagate to the caller."""


# -- transient branch -------------------------------------------------------

class DiskIOError(TransientError):
    """A page transfer failed (simulated media/controller hiccup)."""


class ConnectionLostError(TransientError):
    """The app-server <-> RDBMS connection dropped mid-round-trip."""


class StatementTimeout(TransientError):
    """A statement/query exceeded its simulated-time deadline."""


class CircuitOpenError(TransientError):
    """The DBIF circuit breaker is open: the call failed fast.

    Raised instead of attempting a round trip while the breaker cools
    down after a fault storm, so a dead backend sheds load immediately
    rather than dragging every caller through the full retry/backoff
    ladder.  Transient by definition — the breaker half-opens once its
    cooldown elapses."""


# -- permanent branch -------------------------------------------------------

class SqlSyntaxError(PermanentError):
    """Raised by the lexer/parser on malformed SQL text."""


class CatalogError(PermanentError):
    """Unknown or duplicate table/view/index/column."""


class PlanError(PermanentError):
    """The planner could not produce a plan (unsupported construct)."""


class ExecutionError(PermanentError):
    """Runtime failure while executing a plan."""


class TypeError_(PermanentError):
    """Value incompatible with a column's declared SQL type."""


class ConstraintError(PermanentError):
    """Primary-key or not-null violation."""
