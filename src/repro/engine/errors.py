"""Engine exception hierarchy.

Two branches matter for robustness handling:

* :class:`TransientError` — the operation failed for a reason that a
  retry (possibly after a backoff) can plausibly fix: a dropped
  app-server/DB connection, a transient disk I/O error, a statement
  killed by a timeout.  The DBIF and the disk model retry these.
* :class:`PermanentError` — retrying is pointless: malformed SQL,
  unknown catalog objects, constraint violations.  These propagate.

Everything still derives from :class:`EngineError`, so existing
``except EngineError`` sites keep working unchanged.

Durability adds two WAL-specific members with deliberate placement:

* :class:`TornWriteError` is *transient* — a torn (truncated) frame on
  the log **tail** is the expected signature of a crash mid-flush, and
  recovery handles it by dropping the tail record.
* :class:`WalCorruptionError` is *permanent* — a CRC mismatch in the
  middle of the log means durable history is damaged; no retry or
  recovery pass can reconstruct it.
* :class:`SimulatedCrash` derives from :class:`EngineError` directly,
  on purpose outside both branches: a crash kills the whole engine
  process, so neither the disk retry loop nor the DBIF backoff ladder
  may swallow it.
"""


class EngineError(Exception):
    """Base class for all engine errors."""


class TransientError(EngineError):
    """An error a retry can plausibly fix (fault-injection class)."""


class PermanentError(EngineError):
    """An error retrying cannot fix; must propagate to the caller."""


class SimulatedCrash(EngineError):
    """The simulated engine process died (crash-point fuzzing).

    Deliberately neither transient nor permanent: no in-process retry
    handler is allowed to catch-and-continue past a dead engine.  The
    harness discards the instance and reopens from the durable store.
    """


# -- transient branch -------------------------------------------------------

class DiskIOError(TransientError):
    """A page transfer failed (simulated media/controller hiccup)."""


class ConnectionLostError(TransientError):
    """The app-server <-> RDBMS connection dropped mid-round-trip."""


class StatementTimeout(TransientError):
    """A statement/query exceeded its simulated-time deadline."""


class CircuitOpenError(TransientError):
    """The DBIF circuit breaker is open: the call failed fast.

    Raised instead of attempting a round trip while the breaker cools
    down after a fault storm, so a dead backend sheds load immediately
    rather than dragging every caller through the full retry/backoff
    ladder.  Transient by definition — the breaker half-opens once its
    cooldown elapses."""


class TornWriteError(TransientError):
    """A WAL frame on the log tail is truncated (torn write).

    The classic crash-mid-flush signature: the length prefix promises
    more bytes than the device persisted, or the CRC of the final frame
    does not match.  Transient because recovery resolves it without
    data loss — the torn record was never acknowledged as committed."""


# -- permanent branch -------------------------------------------------------

class SqlSyntaxError(PermanentError):
    """Raised by the lexer/parser on malformed SQL text."""


class CatalogError(PermanentError):
    """Unknown or duplicate table/view/index/column."""


class PlanError(PermanentError):
    """The planner could not produce a plan (unsupported construct)."""


class ExecutionError(PermanentError):
    """Runtime failure while executing a plan."""


class TypeError_(PermanentError):
    """Value incompatible with a column's declared SQL type."""


class ConstraintError(PermanentError):
    """Primary-key or not-null violation."""


class WalCorruptionError(PermanentError):
    """A WAL frame *before* the log tail fails CRC validation.

    Unlike a torn tail, mid-log corruption means acknowledged history
    is gone; replaying past the hole would silently diverge, so the
    error is permanent and recovery refuses to proceed."""
