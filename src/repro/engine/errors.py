"""Engine exception hierarchy."""


class EngineError(Exception):
    """Base class for all engine errors."""


class SqlSyntaxError(EngineError):
    """Raised by the lexer/parser on malformed SQL text."""


class CatalogError(EngineError):
    """Unknown or duplicate table/view/index/column."""


class PlanError(EngineError):
    """The planner could not produce a plan (unsupported construct)."""


class ExecutionError(EngineError):
    """Runtime failure while executing a plan."""


class TypeError_(EngineError):
    """Value incompatible with a column's declared SQL type."""


class ConstraintError(EngineError):
    """Primary-key or not-null violation."""
