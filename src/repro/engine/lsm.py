"""Log-structured merge-tree storage backend.

The second :class:`~repro.engine.storage.StorageBackend`
implementation: writes land in a sorted in-memory memtable and are
flushed — when the memtable exceeds its byte budget — as immutable
sorted-string-table (SSTable) segments written *sequentially*.  An
L0 list of fresh segments is merged by leveled compaction into
exponentially larger levels, again with sequential I/O.  Reads probe
the memtable, then each segment newest-to-oldest, guarded by a
per-segment bloom filter and key-range fences, paying one random
block read (through the shared buffer pool) per segment that might
hold the key.

This is the load-vs-query tradeoff the benchmark measures: inserts
cost memtable CPU plus amortised sequential flush writes instead of
one random in-place page write, while point reads may touch several
segments instead of exactly one heap page.

Keys are rowids.  The engine hands out monotonically increasing
rowids, so freshly flushed runs are naturally sorted and the
StorageBackend contract (stable rowids, tombstoned deletes, the
slot-restoration API for checkpoint/recovery) maps directly onto
LSM entries: a delete writes a tombstone record that shadows older
versions until compaction drops it at the bottom level.

Determinism: bloom filters use fixed multiplicative hashing (never
Python's randomised ``hash``), and compaction is triggered by exact
byte/segment thresholds on the simulated clock — identical inputs
produce identical tick traces.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.engine.buffer import BufferPool
from repro.engine.errors import ExecutionError
from repro.engine.schema import TableSchema
from repro.engine.storage import StorageBackend
from repro.sim.clock import SimulatedClock
from repro.sim.disk import DiskModel
from repro.sim.metrics import MetricsCollector
from repro.sim.params import SimParams

#: multiplicative-hash constants (Knuth-style, fixed for determinism)
_BLOOM_MULTIPLIERS = (2654435761, 2246822519, 3266489917)


class BloomFilter:
    """Fixed-size bloom filter over integer rowids.

    Three multiplicative hash functions over a power-of-two bit array.
    Deterministic across processes (no seed, no ``hash()``), so crash
    recovery rebuilds byte-identical filters.
    """

    def __init__(self, expected_keys: int) -> None:
        bits = 1
        while bits < max(64, expected_keys * 8):
            bits <<= 1
        self._mask = bits - 1
        self._bits = bytearray(bits // 8)

    def _positions(self, key: int) -> Iterator[int]:
        for mult in _BLOOM_MULTIPLIERS:
            yield (key * mult) & self._mask

    def add(self, key: int) -> None:
        for pos in self._positions(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)

    def might_contain(self, key: int) -> bool:
        return all(
            self._bits[pos >> 3] & (1 << (pos & 7))
            for pos in self._positions(key)
        )


class SSTable:
    """One immutable sorted segment.

    Entries are ``(rowid, row | None)`` pairs in ascending rowid order
    (``None`` is a tombstone).  The segment carries min/max key fences,
    a sparse index with the first key of every block, and a bloom
    filter — the three structures a point read consults before paying
    any I/O.
    """

    _seq = 0

    def __init__(self, entries: list[tuple[int, tuple | None]],
                 rows_per_block: int, table_name: str) -> None:
        assert entries, "SSTable must hold at least one entry"
        SSTable._seq += 1
        self.name = f"lsm:{table_name}:{SSTable._seq}"
        self.entries = entries
        self.rows_per_block = rows_per_block
        self.min_key = entries[0][0]
        self.max_key = entries[-1][0]
        #: first rowid of each block — the sparse index
        self.block_fence: list[int] = [
            entries[i][0] for i in range(0, len(entries), rows_per_block)
        ]
        self.bloom = BloomFilter(len(entries))
        self._offsets: dict[int, int] = {}
        for pos, (rowid, _row) in enumerate(entries):
            self.bloom.add(rowid)
            self._offsets[rowid] = pos

    @property
    def block_count(self) -> int:
        return len(self.block_fence)

    def lookup(self, rowid: int) -> tuple[int, tuple | None] | None:
        """(block_no, entry) if this segment holds ``rowid``, else None.

        The caller charges the bloom probe / index probes / block read;
        this method is pure state so recovery digests stay tick-free.
        """
        pos = self._offsets.get(rowid)
        if pos is None:
            return None
        return pos // self.rows_per_block, self.entries[pos][1]

    def covers(self, rowid: int) -> bool:
        return self.min_key <= rowid <= self.max_key


class LsmTree(StorageBackend):
    """LSM-tree row storage for one table.

    Self-charging: mutations pay memtable CPU (plus flush/compaction
    sequential writes when thresholds trip) and charged reads pay
    bloom/sparse-index CPU plus buffered block I/O — the table layer
    must not add its heap-style page writes on top.
    """

    self_charging = True

    def __init__(
        self,
        schema: TableSchema,
        params: SimParams,
        clock: SimulatedClock,
        metrics: MetricsCollector,
        disk: DiskModel,
        buffer_pool: BufferPool,
    ) -> None:
        self.schema = schema
        self._params = params
        self._clock = clock
        self._metrics = metrics
        self._disk = disk
        self._buffer = buffer_pool
        self.rows_per_page = max(
            1, params.page_size_bytes // schema.row_byte_width
        )
        #: memtable: rowid -> row | None (tombstone); kept sorted on
        #: flush — rowids arrive almost always in ascending order
        self._memtable: dict[int, tuple | None] = {}
        #: fresh flushed segments, oldest first
        self._l0: list[SSTable] = []
        #: levels[i] is level i+1 — one fully merged segment per level
        self._levels: list[SSTable | None] = []
        self._next_rowid = 0
        self._live = 0
        self.version = 0
        #: crash-fuzz hook: called with "lsm.flush" / "lsm.compaction"
        #: at each durable boundary (the WAL wires its ``_boundary``)
        self.boundary: Callable[[str], None] | None = None
        #: direct-path load holds compaction so sorted runs stack in L0
        self._compaction_held = False

    # -- cost helpers -----------------------------------------------------

    def _charge_memtable_op(self) -> None:
        self._clock.charge(self._params.lsm_memtable_op_s)

    def _pages_for_entries(self, count: int) -> int:
        if count <= 0:
            return 0
        return -(-count // self.rows_per_page)

    def _memtable_bytes(self) -> int:
        return len(self._memtable) * self.schema.row_byte_width

    # -- mutation ---------------------------------------------------------

    def append(self, row: tuple) -> int:
        rowid = self._next_rowid
        self._next_rowid += 1
        self._memtable[rowid] = row
        self._live += 1
        self.version += 1
        self._charge_memtable_op()
        self._metrics.count("lsm.memtable_writes")
        self._maybe_flush()
        return rowid

    def delete(self, rowid: int) -> None:
        if self._visible(rowid) is None:
            raise ExecutionError(f"delete of dead rowid {rowid}")
        self._memtable[rowid] = None
        self._live -= 1
        self.version += 1
        self._charge_memtable_op()
        self._metrics.count("lsm.memtable_writes")
        self._maybe_flush()

    def update(self, rowid: int, row: tuple) -> None:
        if self._visible(rowid) is None:
            raise ExecutionError(f"update of dead rowid {rowid}")
        self._memtable[rowid] = row
        self.version += 1
        self._charge_memtable_op()
        self._metrics.count("lsm.memtable_writes")
        self._maybe_flush()

    # -- flush / compaction ----------------------------------------------

    def _maybe_flush(self) -> None:
        if self._memtable_bytes() >= self._params.lsm_memtable_bytes:
            self.flush_memtable()

    def flush_memtable(self) -> None:
        """Write the memtable as one sorted L0 segment (sequential I/O)."""
        if not self._memtable:
            return
        entries = sorted(self._memtable.items())
        segment = SSTable(entries, self.rows_per_page, self.schema.name)
        pages = self._pages_for_entries(len(entries))
        for _ in range(pages):
            self._disk.write_page(sequential=True)
        self._metrics.count("lsm.flushes")
        self._metrics.count("lsm.flush_pages", pages)
        self._memtable = {}
        self._l0.append(segment)
        if self.boundary is not None:
            self.boundary("lsm.flush")
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        if self._compaction_held:
            return
        if len(self._l0) >= self._params.lsm_l0_compaction_trigger:
            self._compact_l0()
        self._cascade_levels()

    def _level_budget(self, level_index: int) -> int:
        """Byte budget of ``levels[level_index]`` (level ``index+1``)."""
        return self._params.lsm_memtable_bytes * (
            self._params.lsm_level_ratio ** (level_index + 1)
        )

    def _compact_l0(self) -> None:
        """Merge every L0 segment (plus L1) into a new L1 segment."""
        if not self._l0:
            return
        inputs = list(self._l0)
        if self._levels and self._levels[0] is not None:
            inputs.insert(0, self._levels[0])
        merged = self._merge(inputs, bottom=self._is_bottom(0))
        self._l0 = []
        if not self._levels:
            self._levels.append(None)
        self._levels[0] = merged
        self._cascade_levels()

    def _cascade_levels(self) -> None:
        """Push over-budget levels down until every level fits."""
        i = 0
        while i < len(self._levels):
            segment = self._levels[i]
            if segment is None or self._segment_bytes(segment) <= \
                    self._level_budget(i):
                i += 1
                continue
            inputs = [segment]
            if i + 1 < len(self._levels) and self._levels[i + 1] is not None:
                inputs.insert(0, self._levels[i + 1])
            merged = self._merge(inputs, bottom=self._is_bottom(i + 1))
            self._levels[i] = None
            if i + 1 == len(self._levels):
                self._levels.append(None)
            self._levels[i + 1] = merged
            i += 1

    def _is_bottom(self, level_index: int) -> bool:
        """No data below ``levels[level_index]`` → tombstones can drop."""
        return all(
            self._levels[j] is None
            for j in range(level_index + 1, len(self._levels))
        )

    def _merge(self, inputs: list[SSTable], bottom: bool) -> SSTable:
        """Merge segments (later inputs win), charging compaction I/O.

        Inputs are read sequentially and the merged run is written
        sequentially — the whole point of the LSM's write path.  The
        buffer pool drops the consumed segments' cached blocks.
        """
        merged: dict[int, tuple | None] = {}
        read_pages = 0
        for segment in inputs:  # oldest first: later segments overwrite
            read_pages += self._pages_for_entries(len(segment.entries))
            for rowid, row in segment.entries:
                merged[rowid] = row
        if bottom:
            entries = [(k, v) for k, v in sorted(merged.items())
                       if v is not None]
        else:
            entries = sorted(merged.items())
        for _ in range(read_pages):
            self._disk.read_page(sequential=True)
        out_pages = self._pages_for_entries(len(entries))
        for _ in range(out_pages):
            self._disk.write_page(sequential=True)
        self._metrics.count("lsm.compactions")
        self._metrics.count("lsm.compaction_pages", read_pages + out_pages)
        for segment in inputs:
            self._buffer.invalidate_file(segment.name)
        if self.boundary is not None:
            self.boundary("lsm.compaction")
        if not entries:
            # every row tombstoned away at the bottom level: keep one
            # tombstone entry so callers always get a segment back
            entries = sorted(merged.items())[:1]
        return SSTable(entries, self.rows_per_page, self.schema.name)

    # -- direct-path load -------------------------------------------------

    def hold_compaction(self) -> None:
        """Suspend compaction (direct-path load stacks sorted runs)."""
        self._compaction_held = True

    def release_compaction(self) -> None:
        """Resume compaction and catch up on the backlog."""
        self._compaction_held = False
        self._maybe_compact()

    def ingest_sorted(self, rows: list[tuple]) -> list[int]:
        """Direct-path ingest: build L0 segments without the memtable.

        Rows are appended at fresh (ascending) rowids — already sorted
        by construction — and written straight to sequential pages in
        memtable-sized runs.  Costs one sequential page write per page
        and zero memtable CPU per row; the caller is responsible for
        WAL bypass and the sealing checkpoint.
        """
        if not rows:
            return []
        rowids: list[int] = []
        rows_per_run = max(
            1,
            self._params.lsm_memtable_bytes // self.schema.row_byte_width,
        )
        for start in range(0, len(rows), rows_per_run):
            chunk = rows[start:start + rows_per_run]
            entries: list[tuple[int, tuple | None]] = []
            for row in chunk:
                rowid = self._next_rowid
                self._next_rowid += 1
                entries.append((rowid, row))
                rowids.append(rowid)
            segment = SSTable(entries, self.rows_per_page, self.schema.name)
            pages = self._pages_for_entries(len(entries))
            for _ in range(pages):
                self._disk.write_page(sequential=True)
            self._metrics.count("lsm.flushes")
            self._metrics.count("lsm.flush_pages", pages)
            self._l0.append(segment)
            if self.boundary is not None:
                self.boundary("lsm.flush")
        self._live += len(rows)
        self.version += 1
        self._metrics.count("lsm.direct_rows", len(rows))
        self._maybe_compact()
        return rowids

    # -- access (uncharged state readers) ---------------------------------

    def _visible(self, rowid: int) -> tuple | None:
        """Newest-wins visibility without charging the clock."""
        if rowid in self._memtable:
            return self._memtable[rowid]
        for segment in reversed(self._l0):
            if segment.covers(rowid):
                found = segment.lookup(rowid)
                if found is not None:
                    return found[1]
        for segment in self._levels:
            if segment is not None and segment.covers(rowid):
                found = segment.lookup(rowid)
                if found is not None:
                    return found[1]
        return None

    def fetch(self, rowid: int) -> tuple:
        row = self._visible(rowid)
        if row is None:
            raise ExecutionError(f"fetch of dead rowid {rowid}")
        return row

    def get(self, rowid: int) -> tuple | None:
        return self._visible(rowid)

    def scan(self) -> Iterator[tuple[int, tuple]]:
        """Yield (rowid, row) for every live row in rowid order.

        The merged view is materialised up front, so the iterator stays
        stable even if a concurrent-on-the-clock mutation triggers a
        flush or compaction mid-scan.
        """
        merged = self._merged_view()
        for rowid in sorted(merged):
            row = merged[rowid]
            if row is not None:
                yield rowid, row

    def _merged_view(self) -> dict[int, tuple | None]:
        merged: dict[int, tuple | None] = {}
        for segment in reversed(self._levels):  # deepest (oldest) first
            if segment is not None:
                for rowid, row in segment.entries:
                    merged[rowid] = row
        for segment in self._l0:  # oldest L0 first
            for rowid, row in segment.entries:
                merged[rowid] = row
        merged.update(self._memtable)
        return merged

    # -- access (charged readers used by the table layer) ------------------

    def read_point(self, rowid: int) -> tuple | None:
        """Charged point read: memtable probe, then per-segment bloom
        + sparse index + one buffered block read for each segment that
        might hold the key (newest first, stop at first hit)."""
        self._charge_memtable_op()
        if rowid in self._memtable:
            self._metrics.count("lsm.memtable_hits")
            return self._memtable[rowid]
        candidates: list[SSTable] = list(reversed(self._l0))
        candidates.extend(s for s in self._levels if s is not None)
        for segment in candidates:
            if not segment.covers(rowid):
                continue
            self._clock.charge(self._params.lsm_bloom_probe_s)
            self._metrics.count("lsm.bloom_probes")
            if not segment.bloom.might_contain(rowid):
                self._metrics.count("lsm.bloom_skips")
                continue
            found = segment.lookup(rowid)
            if found is None:
                # bloom false positive: pay the index walk for nothing
                self._charge_index_walk(segment)
                self._metrics.count("lsm.bloom_false_positives")
                continue
            block_no, row = found
            self._charge_index_walk(segment)
            self._buffer.access(segment.name, block_no, sequential=False)
            self._metrics.count("lsm.segment_reads")
            return row
        return None

    def _charge_index_walk(self, segment: SSTable) -> None:
        steps = max(1, segment.block_count.bit_length())
        self._clock.charge(self._params.lsm_index_probe_s * steps)

    def scan_charged(self) -> Iterator[tuple[int, tuple]]:
        """Charged merging scan: every segment is read sequentially
        through the buffer pool, plus memtable CPU per resident entry."""
        segments: list[SSTable] = list(self._l0)
        segments.extend(s for s in self._levels if s is not None)
        for segment in segments:
            for block_no in range(segment.block_count):
                self._buffer.access(segment.name, block_no, sequential=True)
        for _ in range(len(self._memtable)):
            self._charge_memtable_op()
        self._metrics.count("lsm.scans")
        yield from self.scan()

    # -- checkpoint / recovery --------------------------------------------

    def snapshot_slots(self) -> list[tuple | None]:
        """Dense slot array (tombstones as None) — heap-compatible."""
        merged = self._merged_view()
        return [merged.get(rowid) for rowid in range(self._next_rowid)]

    def load_slots(self, slots: list[tuple | None]) -> None:
        """Rebuild from a checkpoint image as one bottom-level segment."""
        self._memtable = {}
        self._l0 = []
        self._levels = []
        self._next_rowid = len(slots)
        self._live = sum(1 for row in slots if row is not None)
        entries = [(rowid, row) for rowid, row in enumerate(slots)
                   if row is not None]
        if entries:
            self._levels.append(
                SSTable(entries, self.rows_per_page, self.schema.name)
            )
        self.version += 1

    def restore_slot(self, rowid: int, row: tuple) -> None:
        if self._visible(rowid) is not None:
            raise ExecutionError(f"redo insert into occupied slot {rowid}")
        self._memtable[rowid] = row
        if rowid >= self._next_rowid:
            self._next_rowid = rowid + 1
        self._live += 1
        self.version += 1
        self._charge_memtable_op()
        self._maybe_flush()

    def put_slot(self, rowid: int, row: tuple | None) -> None:
        if not 0 <= rowid < self._next_rowid:
            raise ExecutionError(f"put_slot of unknown rowid {rowid}")
        was_live = self._visible(rowid) is not None
        self._memtable[rowid] = row
        self._live += (row is not None) - was_live
        self.version += 1
        self._charge_memtable_op()
        self._maybe_flush()

    # -- accounting --------------------------------------------------------

    def _segment_bytes(self, segment: SSTable) -> int:
        return len(segment.entries) * self.schema.row_byte_width

    @property
    def row_count(self) -> int:
        return self._live

    @property
    def page_count(self) -> int:
        pages = self._pages_for_entries(len(self._memtable))
        for segment in self._l0:
            pages += self._pages_for_entries(len(segment.entries))
        for segment in self._levels:
            if segment is not None:
                pages += self._pages_for_entries(len(segment.entries))
        return pages

    @property
    def data_bytes(self) -> int:
        entries = len(self._memtable)
        entries += sum(len(s.entries) for s in self._l0)
        entries += sum(
            len(s.entries) for s in self._levels if s is not None
        )
        return entries * self.schema.row_byte_width

    def page_of(self, rowid: int) -> int:
        """Logical page number (keyspace position / rows-per-page)."""
        return rowid // self.rows_per_page

    @property
    def compaction_backlog(self) -> int:
        """Pending L0 segments — the monitor's backlog gauge."""
        return len(self._l0)
