"""Public engine facade.

A :class:`Database` bundles clock, metrics, disk model, buffer pool,
catalog, statistics and planner behind a DB-API-flavoured interface:

>>> db = Database()
>>> db.create_table(TableSchema("t", [Column("a", SqlType.integer())]))
>>> db.execute("INSERT INTO t VALUES (1)")
>>> db.execute("SELECT a FROM t").rows
[(1,)]

``prepare()`` returns a reusable parameterized statement planned
*once*, with parameter-blind selectivity estimates — the engine-level
hook SAP's cursor caching uses (and the mechanism behind the paper's
Table 6 optimizer trap).
"""

from __future__ import annotations

import copy
import hashlib
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.engine.catalog import Catalog
from repro.engine.buffer import BufferPool
from repro.engine.errors import ExecutionError, PlanError
from repro.engine.exec.base import ExecContext
from repro.engine.expr import Expr, OutputSchema, predicate_holds
from repro.engine.parallel import ParallelPolicy, PartitionManager
from repro.engine.plan.binder import bind_expr
from repro.engine.plan.planner import PlannedQuery, Planner
from repro.engine.schema import TableSchema
from repro.engine.sql.ast import (
    DeleteStmt,
    InsertStmt,
    SelectStmt,
    UpdateStmt,
)
from repro.engine.sql.parser import parse_select, parse_sql
from repro.engine.stats import TableStats, analyze
from repro.engine.wal import (
    CheckpointImage,
    DurableStore,
    WriteAheadLog,
    schema_from_payload,
    schema_to_payload,
)
from repro.monitor.core import WorkloadMonitor
from repro.sim.clock import SimulatedClock
from repro.sim.disk import DiskModel
from repro.sim.metrics import MetricsCollector
from repro.sim.params import SimParams
from repro.trace.tracer import Tracer


@dataclass
class Result:
    """Query result: column names and materialized rows."""

    columns: list[str]
    rows: list[tuple]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def scalar(self) -> object:
        """First column of the first row (None on empty results)."""
        if not self.rows:
            return None
        return self.rows[0][0]


class PreparedStatement:
    """A statement planned once and executable many times.

    Parameter markers are opaque at plan time, so access paths are
    chosen with default selectivities — exactly what a parameterized
    cursor in a 1990s RDBMS did.
    """

    def __init__(self, database: "Database", sql: str) -> None:
        self._database = database
        self.sql = sql
        self._plan: PlannedQuery | None = None
        stmt = parse_sql(sql)
        if isinstance(stmt, SelectStmt):
            self._plan = database._plan(stmt, sql=sql)
            self._stmt = None
        else:
            self._stmt = stmt
        self.executions = 0

    def execute(self, params: Sequence[object] = ()) -> Result:
        self.executions += 1
        if self._plan is not None:
            return self._database._run_plan(self._plan, params, sql=self.sql)
        assert self._stmt is not None
        return self._database._execute_dml(copy.deepcopy(self._stmt), params,
                                           sql=self.sql)

    def explain(self) -> str:
        if self._plan is None:
            return f"DML({self.sql})"
        return self._plan.operator.explain()


class Database:
    """An isolated engine instance with its own simulated clock.

    ``durability`` selects the storage contract: ``"off"`` (default)
    keeps the historical volatile behaviour with zero WAL touchpoints —
    the tick-for-tick identical pre-durability path — while ``"wal"``
    write-ahead-logs every mutation into a :class:`DurableStore` that
    survives a simulated crash.  A crashed store is reopened with
    :meth:`Database.open`, which runs ARIES-style recovery before
    handing the database back.
    """

    def __init__(self, params: SimParams | None = None,
                 name: str = "db", degree: int = 1,
                 durability: str = "off",
                 store: DurableStore | None = None,
                 storage: str = "heap") -> None:
        self.name = name
        self.params = params or SimParams()
        self.clock = SimulatedClock()
        self.metrics = MetricsCollector()
        if storage not in ("heap", "lsm"):
            raise PlanError(f"unknown storage backend {storage!r}")
        self.storage = storage
        self.disk = DiskModel(
            self.clock, self.metrics,
            seq_read_s=self.params.seq_read_s,
            random_read_s=self.params.random_read_s,
            write_s=self.params.write_s,
            retry_penalty_s=self.params.disk_retry_penalty_s,
            max_retries=self.params.disk_max_retries,
            fsync_s=self.params.wal_fsync_s,
            seq_write_s=self.params.seq_write_s,
        )
        capacity = max(
            1, self.params.buffer_pool_bytes // self.params.page_size_bytes
        )
        self.buffer_pool = BufferPool(
            capacity, self.disk, self.clock, self.metrics,
            hit_cpu_s=self.params.buffer_hit_s,
        )
        self.catalog = Catalog(self.buffer_pool, self.clock, self.metrics,
                               self.params, storage=storage, disk=self.disk)
        self.stats: dict[str, TableStats] = {}
        self.ctx = ExecContext(self.clock, self.metrics, self.params,
                               self.buffer_pool)
        self._planner = Planner(self.catalog, self.stats, self.ctx)
        #: hierarchical span tracer (disabled by default, zero-overhead)
        self.tracer = Tracer(self.clock, self.metrics)
        self.ctx.tracer = self.tracer
        #: always-on workload monitor (disabled by default, zero-tick)
        self.monitor = WorkloadMonitor(self.clock, self.metrics)
        #: version-checked partition overlays for parallel scans
        self.partitions = PartitionManager(self.ctx)
        self._partition_choices: dict[str, tuple[str, str]] = {}
        #: view name -> CREATE VIEW select text (for checkpoint images)
        self._view_sql: dict[str, str] = {}
        if durability not in ("off", "wal"):
            raise PlanError(f"unknown durability mode {durability!r}")
        #: the write-ahead log, or None with durability off
        self.wal: WriteAheadLog | None = None
        if durability == "wal":
            wal_store = store if store is not None else DurableStore(
                self.params)
            #: remembered so Database.open reopens with the same backend
            wal_store.storage = storage
            self.wal = WriteAheadLog(wal_store, self.clock, self.metrics,
                                     self.disk, self.params)
            self.wal.snapshot_provider = self._snapshot_for_checkpoint
            self.wal.monitor = self.monitor
        if storage == "lsm":
            # Monitor gauge: pending L0 segments across all tables.
            # Only attached for LSM databases, so heap-only runs stay
            # structurally silent (no gauge, no alert-rule streaks).
            self.monitor.attach_source(
                "compaction_backlog", self._compaction_backlog
            )
        self.degree = 1
        if degree > 1:
            self.set_degree(degree)

    # -- parallelism --------------------------------------------------------

    def set_degree(self, degree: int) -> None:
        """Set the requested degree of parallelism for SELECT plans.

        ``degree=1`` uninstalls the parallel policy entirely, so the
        serial executor runs unchanged — the zero-regression path.
        Already-prepared statements keep the plan they were compiled
        with (cursor caching semantics).
        """
        degree = int(degree)
        if degree < 1:
            raise PlanError(f"degree must be >= 1, got {degree}")
        self.degree = degree
        if degree == 1:
            self._planner.parallel = None
        else:
            self._planner.parallel = ParallelPolicy(
                self.ctx, self.stats, self.partitions, degree,
                partition_choices=self._partition_choices,
            )

    def set_partition_column(self, table_name: str, column: str,
                             kind: str = "hash") -> None:
        """Override the partition key for a table (e.g. to force skew)."""
        table = self.catalog.table(table_name)
        column = column.lower()
        table.schema.column_index(column)  # raises on unknown column
        if kind not in ("hash", "range"):
            raise PlanError(f"unknown partition kind {kind!r}")
        self._partition_choices[table.name] = (column, kind)
        self.partitions.invalidate(table.name)

    def prepartition(self, *table_names: str) -> dict[str, int]:
        """Eagerly build partition overlays (all tables by default).

        Returns table -> degree actually used (tables too small to
        parallelize are skipped).  Without this the first parallel
        query pays the partition-build cost inline.
        """
        policy = self._planner.parallel
        if policy is None:
            return {}
        built: dict[str, int] = {}
        for name in table_names or self.catalog.table_names:
            table = self.catalog.table(name)
            degree = policy.degree_for(table)
            if not degree:
                continue
            spec = policy.spec_for(table, degree)
            if spec is None:
                continue
            self.partitions.get(table, spec)
            built[table.name] = degree
        return built

    # -- DDL ----------------------------------------------------------------

    def create_table(self, schema: TableSchema):
        table = self.catalog.create_table(schema)
        table.wal = self.wal
        if self.wal is not None:
            if table.heap.self_charging:
                # LSM flush/compaction are checkpoint-like durable
                # boundaries: expose them as crash-fuzz kill points.
                table.heap.boundary = self.wal._boundary
            self.wal.log_ddl(("create_table", schema_to_payload(schema)))
        return table

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)
        self.stats.pop(name.lower(), None)
        if self.wal is not None:
            self.wal.log_ddl(("drop_table", name.lower()))

    def create_index(self, index_name: str, table_name: str,
                     column_names: list[str], unique: bool = False):
        index = self.catalog.create_index(index_name, table_name,
                                          column_names, unique=unique)
        if self.wal is not None:
            self.wal.log_ddl(("create_index", {
                "name": index.name, "table": table_name.lower(),
                "columns": list(index.column_names), "unique": unique,
                "kind": "btree",
            }))
        return index

    def drop_index(self, index_name: str) -> None:
        self.catalog.drop_index(index_name)
        if self.wal is not None:
            self.wal.log_ddl(("drop_index", index_name.lower()))

    def create_view(self, name: str, select_sql: str) -> None:
        self.catalog.create_view(name, parse_select(select_sql))
        self._view_sql[name.lower()] = select_sql
        if self.wal is not None:
            self.wal.log_ddl(("create_view", name.lower(), select_sql))

    def drop_view(self, name: str) -> None:
        self.catalog.drop_view(name)
        self._view_sql.pop(name.lower(), None)
        if self.wal is not None:
            self.wal.log_ddl(("drop_view", name.lower()))

    # -- statistics -----------------------------------------------------------

    def analyze(self, table_name: str | None = None) -> None:
        """Collect optimizer statistics (full pass, charges a scan)."""
        names = (
            [table_name.lower()] if table_name else self.catalog.table_names
        )
        for name in names:
            table = self.catalog.table(name)
            # ANALYZE reads the whole table once.
            for _ in table.scan():
                pass
            self.stats[name] = analyze(table)

    # -- query execution ---------------------------------------------------

    def execute(self, sql: str, params: Sequence[object] = ()) -> Result:
        stmt = parse_sql(sql)
        if isinstance(stmt, SelectStmt):
            plan = self._plan(stmt, sql=sql)
            return self._run_plan(plan, params, sql=sql)
        return self._execute_dml(stmt, params, sql=sql)

    def prepare(self, sql: str) -> PreparedStatement:
        return PreparedStatement(self, sql)

    def explain(self, sql: str) -> str:
        stmt = parse_sql(sql)
        if not isinstance(stmt, SelectStmt):
            return f"DML({sql.strip().split()[0].upper()})"
        return self._plan(stmt).operator.explain()

    def _plan(self, stmt: SelectStmt, sql: str | None = None) -> PlannedQuery:
        self.metrics.count("db.plans")
        with self.monitor.layer("engine"):
            self.clock.charge(self.params.plan_cpu_s)
            with self.tracer.span("db.plan", sql=sql):
                return self._planner.plan_select(stmt)

    def _run_plan(self, plan: PlannedQuery, params: Sequence[object],
                  sql: str | None = None) -> Result:
        self.metrics.count("db.queries")
        tracer = self.tracer
        if not tracer.enabled:
            with self.monitor.layer("engine"):
                rows = list(plan.operator.rows(params))
            return Result(plan.column_names, rows)
        # EXPLAIN ANALYZE mode: instrument the plan (idempotent; the
        # profile accumulates across executions of a cached cursor).
        from repro.engine.exec.profile import attach_profile

        profile = attach_profile(plan.operator, self.clock, self.metrics)
        with tracer.span("db.query", sql=sql) as span, \
                self.monitor.layer("engine"):
            rows = list(plan.operator.rows(params))
            span.set(rows=len(rows), profile=profile)
        return Result(plan.column_names, rows)

    # -- DML -------------------------------------------------------------------

    def _execute_dml(self, stmt, params: Sequence[object],
                     sql: str | None = None) -> Result:
        with self.tracer.span("db.dml", sql=sql,
                              kind=type(stmt).__name__) as span, \
                self.monitor.layer("engine"):
            wal = self.wal
            if wal is not None and not wal.in_txn and not wal.dead \
                    and not wal.recovering:
                # Statement-level transaction: a multi-row UPDATE or
                # DELETE group-commits once instead of forcing the log
                # per mutated row.  Committed even if the statement
                # errors mid-way — the log must mirror whatever partial
                # effects stayed in memory (there is no statement undo).
                wal.begin()
                try:
                    result = self._dispatch_dml(stmt, params)
                finally:
                    wal.commit()
            else:
                result = self._dispatch_dml(stmt, params)
            span.set(rows=result.scalar())
            return result

    def _dispatch_dml(self, stmt, params: Sequence[object]) -> Result:
        if isinstance(stmt, InsertStmt):
            return self._run_insert(stmt, params)
        if isinstance(stmt, DeleteStmt):
            return self._run_delete(stmt, params)
        if isinstance(stmt, UpdateStmt):
            return self._run_update(stmt, params)
        raise PlanError(f"unsupported statement {type(stmt).__name__}")

    def _run_insert(self, stmt: InsertStmt, params: Sequence[object]) -> Result:
        table = self.catalog.table(stmt.table)
        schema = table.schema
        count = 0
        for value_row in stmt.rows:
            values = [expr.eval((), params) for expr in value_row]
            if stmt.columns is None:
                if len(values) != len(schema.columns):
                    raise PlanError(
                        f"INSERT width mismatch for {stmt.table}"
                    )
                row = tuple(values)
            else:
                if len(values) != len(stmt.columns):
                    raise PlanError("INSERT column/value count mismatch")
                by_name = {
                    c.lower(): v for c, v in zip(stmt.columns, values)
                }
                row = tuple(
                    by_name.get(col.name.lower()) for col in schema.columns
                )
            table.insert(row)
            count += 1
        return Result(["inserted"], [(count,)])

    def _matching_rowids(self, table, where: Expr | None,
                         params: Sequence[object]) -> list[int]:
        """Rowids matching WHERE, using an index for simple eq predicates."""
        if where is None:
            return [rowid for rowid, _row in table.heap.scan()]
        schema = OutputSchema(
            [(table.name, c.name) for c in table.schema.columns]
        )
        bind_expr(where, schema)
        # Index-assisted path: cover a prefix of some index with the
        # equality conjuncts, then re-check the full predicate.
        from repro.engine.expr import split_conjuncts
        from repro.engine.plan.access import eq_sarg_value

        eq_values: dict[str, object] = {}
        for conjunct in split_conjuncts(where):
            entry = eq_sarg_value(conjunct)
            if entry is not None and entry[0] not in eq_values:
                eq_values[entry[0]] = entry[1]
        best_index = None
        best_prefix = 0
        for index in table.indexes.values():
            if not hasattr(index, "search_prefix"):
                continue
            prefix = 0
            for column in index.column_names:
                if column in eq_values:
                    prefix += 1
                else:
                    break
            if prefix > best_prefix:
                best_prefix = prefix
                best_index = index
        if best_index is not None:
            key = tuple(
                eq_values[column].eval((), params)
                for column in best_index.column_names[:best_prefix]
            )
            matches = []
            for _key, rowid in best_index.search_prefix(key):
                row = table.fetch_row(rowid)
                if predicate_holds(where, row, params):
                    matches.append(rowid)
            return matches
        matches = []
        for rowid, row in table.scan():
            self.ctx.charge_tuples(1)
            if predicate_holds(where, row, params):
                matches.append(rowid)
        return matches

    def _run_delete(self, stmt: DeleteStmt, params: Sequence[object]) -> Result:
        table = self.catalog.table(stmt.table)
        rowids = self._matching_rowids(table, stmt.where, params)
        for rowid in rowids:
            table.delete(rowid)
        return Result(["deleted"], [(len(rowids),)])

    def _run_update(self, stmt: UpdateStmt, params: Sequence[object]) -> Result:
        table = self.catalog.table(stmt.table)
        schema = OutputSchema(
            [(table.name, c.name) for c in table.schema.columns]
        )
        rowids = self._matching_rowids(table, stmt.where, params)
        positions = []
        for assignment in stmt.assignments:
            positions.append(table.schema.column_index(assignment.column))
            bind_expr(assignment.value, schema)
        for rowid in rowids:
            row = list(table.heap.fetch(rowid))
            old = tuple(row)
            for assignment, pos in zip(stmt.assignments, positions):
                row[pos] = assignment.value.eval(old, params)
            table.update(rowid, tuple(row))
        return Result(["updated"], [(len(rowids),)])

    # -- bulk loading ------------------------------------------------------------

    def bulk_load(self, table_name: str, rows: Iterable[tuple]) -> int:
        """Bulk-load rows (page-at-a-time writes, the fast path SAP's
        batch input never uses)."""
        table = self.catalog.table(table_name)
        wal = self.wal
        own_txn = wal is not None and not wal.in_txn and not wal.dead \
            and not wal.recovering
        if own_txn:
            assert wal is not None
            wal.begin()
        try:
            count = 0
            for row in rows:
                table.insert(row, bulk=True)
                count += 1
        finally:
            if own_txn:
                assert wal is not None
                wal.commit()
        self.metrics.count(f"db.bulk_loaded.{table.name}", count)
        return count

    def direct_path_load(self, table_name: str,
                         rows: Iterable[tuple]) -> int:
        """Direct-path load: pre-sorted ingest below the buffer pool.

        The fast path SAP's batch input forgoes: rows are validated,
        appended in storage order with *sequential* page writes that
        bypass the buffer pool, index maintenance is deferred to one
        bulk build at the end, and the WAL is bypassed entirely — a
        sealing checkpoint afterwards makes the loaded extent durable
        in one fuzzy-checkpoint image instead of millions of log
        records.  Crash *before* the seal: nothing of the load is
        durable, and the caller's journal (still showing the phase
        unfinished) re-runs it idempotently.
        """
        table = self.catalog.table(table_name)
        validated = [table.schema.validate_row(row) for row in rows]
        wal = self.wal
        bypassed = False
        if wal is not None and not wal.dead and not wal.recovering:
            wal.bypass = True
            bypassed = True
        heap = table.heap
        if heap.self_charging:
            heap.hold_compaction()
        try:
            if heap.self_charging:
                rowids = heap.ingest_sorted(validated)
            else:
                rowids = []
                first_new_page = heap.page_count
                for row in validated:
                    rowids.append(heap.append(row))
                for _ in range(heap.page_count - first_new_page):
                    self.disk.write_page(sequential=True)
                # freshly written extents invalidate any cached pages
                self.buffer_pool.invalidate_file(table.name)
            if validated:
                self.metrics.count(f"table.{table.name}.inserts",
                                   len(validated))
            # deferred index build: one bulk pass per index
            for index in table.indexes.values():
                for row, rowid in zip(validated, rowids):
                    index.insert(row, rowid, bulk=True)
        finally:
            if heap.self_charging:
                heap.release_compaction()
            if bypassed:
                wal.bypass = False
        if bypassed:
            # the sealing checkpoint: first durable point of the load
            wal.checkpoint()
        self.metrics.count(f"db.direct_loaded.{table.name}",
                           len(validated))
        return len(validated)

    # -- storage accounting (the paper's Table 2) ---------------------------------

    def storage_report(self) -> dict[str, dict[str, int]]:
        """Per-table data and index bytes."""
        report: dict[str, dict[str, int]] = {}
        for name in self.catalog.table_names:
            table = self.catalog.table(name)
            report[name] = {
                "rows": table.row_count,
                "data_bytes": table.data_bytes,
                "index_bytes": table.index_bytes,
            }
        return report

    # -- durability ---------------------------------------------------------------

    def begin(self) -> None:
        """Open an explicit transaction (no-op with durability off)."""
        if self.wal is not None:
            self.wal.begin()

    def commit(self, journal: bytes | None = None) -> None:
        """Group-commit the open transaction (no-op with durability off).

        ``journal`` is an opaque application payload made durable
        atomically with the commit record (batch input's restart
        journal rides here).
        """
        if self.wal is not None:
            self.wal.commit(journal)

    def checkpoint(self) -> None:
        """Write a fuzzy checkpoint (no-op with durability off)."""
        if self.wal is not None:
            self.wal.checkpoint()

    def crash(self) -> DurableStore:
        """Kill this engine instance, keeping only durable state.

        Returns the frozen :class:`DurableStore`; the caller discards
        this instance and reopens the store via :meth:`Database.open`.
        """
        if self.wal is None:
            raise ExecutionError("crash() requires durability='wal'")
        self.wal.die()
        return self.wal.store

    @classmethod
    def open(cls, store: DurableStore, params: SimParams | None = None,
             name: str = "db", degree: int = 1,
             storage: str | None = None):
        """Reopen a durable store, running crash recovery first.

        Returns ``(database, recovery_report)``.  This is the only
        supported way to attach an engine to a store that already
        carries log frames or a checkpoint image.  The storage backend
        defaults to whatever the store was written with.
        """
        from repro.engine.recovery import RecoveryManager

        store.thaw()
        if storage is None:
            storage = getattr(store, "storage", "heap")
        db = cls(params=params or store.params, name=name, degree=degree,
                 durability="wal", store=store, storage=storage)
        report = RecoveryManager(db).run()
        return db, report

    def content_digest(self) -> str:
        """SHA-256 over the logical database content.

        Covers every table's schema, sorted live rows, and index names,
        plus the view names — the comparator the crash-point fuzzer
        uses for "recovered ≡ reference".  Deliberately *logical*:
        tombstone layout may differ between a reference run and a
        crashed-undone-redone run without any observable difference.
        Charges nothing to the clock (a harness probe, not a query).
        """
        digest = hashlib.sha256()
        for table_name in self.catalog.table_names:
            table = self.catalog.table(table_name)
            digest.update(b"T")
            digest.update(table_name.encode())
            digest.update(repr(schema_to_payload(table.schema)).encode())
            for row_repr in sorted(
                repr(row) for _rowid, row in table.heap.scan()
            ):
                digest.update(row_repr.encode())
            digest.update(repr(sorted(table.indexes)).encode())
        for view_name in self.catalog.view_names:
            digest.update(b"V")
            digest.update(view_name.encode())
        return digest.hexdigest()

    # -- recovery plumbing (driven by repro.engine.recovery) -----------------------

    def _snapshot_for_checkpoint(self):
        """(catalog payload, slot arrays) for a checkpoint image.

        Slot copies are free on the simulated clock; the checkpoint's
        I/O is charged separately from the dirty-page table, mirroring
        an incremental fuzzy checkpoint that only writes what changed.
        """
        indexes = []
        for table_name in self.catalog.table_names:
            table = self.catalog.table(table_name)
            for index in table.indexes.values():
                if index is table.primary_index:
                    continue
                indexes.append({
                    "name": index.name, "table": table.name,
                    "columns": list(index.column_names),
                    "unique": index.unique,
                    "kind": ("hash" if type(index).__name__ == "HashIndex"
                             else "btree"),
                })
        catalog_payload = {
            "tables": [
                schema_to_payload(self.catalog.table(n).schema)
                for n in self.catalog.table_names
            ],
            "indexes": indexes,
            "views": dict(self._view_sql),
        }
        slots = {
            n: self.catalog.table(n).heap.snapshot_slots()
            for n in self.catalog.table_names
        }
        return catalog_payload, slots

    def _restore_from_image(self, image: CheckpointImage) -> None:
        """Rebuild catalog + heaps from a checkpoint image (recovery).

        Charges one sequential read per restored heap page.  The WAL's
        ``recovering`` flag must be set by the caller so none of this
        re-logs.
        """
        for table_payload in image.catalog["tables"]:
            schema = schema_from_payload(table_payload)
            table = self.catalog.create_table(schema, attach_pk=False)
            table.wal = self.wal
            if table.heap.self_charging and self.wal is not None:
                table.heap.boundary = self.wal._boundary
            table.heap.load_slots(image.tables.get(table.name, []))
            for _ in range(table.heap.page_count):
                self.disk.read_page(sequential=True)
            if schema.primary_key:
                self.catalog.attach_primary(table)
        for index_spec in image.catalog["indexes"]:
            self.catalog.create_index(
                index_spec["name"], index_spec["table"],
                list(index_spec["columns"]), unique=index_spec["unique"],
                kind=index_spec.get("kind", "btree"),
            )
        for view_name, view_sql in sorted(image.catalog["views"].items()):
            self.create_view(view_name, view_sql)

    def _apply_ddl(self, op: tuple) -> None:
        """Redo one logged DDL operation."""
        verb = op[0]
        if verb == "create_table":
            self.create_table(schema_from_payload(op[1]))
        elif verb == "drop_table":
            self.drop_table(op[1])
        elif verb == "create_index":
            spec = op[1]
            self.catalog.create_index(
                spec["name"], spec["table"], list(spec["columns"]),
                unique=spec["unique"], kind=spec.get("kind", "btree"),
            )
        elif verb == "drop_index":
            self.drop_index(op[1])
        elif verb == "create_view":
            self.create_view(op[1], op[2])
        elif verb == "drop_view":
            self.drop_view(op[1])
        else:
            raise ExecutionError(f"unknown DDL verb in WAL: {verb!r}")

    def _undo_ddl(self, op: tuple) -> None:
        """Reverse a loser transaction's DDL.

        Creations reverse cleanly (drop the object).  Drops cannot be
        reversed — the dropped data is gone — which is why the engine
        only ever logs drops in autocommit transactions (they commit
        before anything else can fail around them).
        """
        verb = op[0]
        if verb == "create_table":
            self.drop_table(op[1]["name"])
        elif verb == "create_index":
            self.drop_index(op[1]["name"])
        elif verb == "create_view":
            self.drop_view(op[1])
        else:
            raise ExecutionError(
                f"cannot undo DDL {verb!r} of a loser transaction"
            )

    # -- misc ----------------------------------------------------------------------

    def _compaction_backlog(self) -> int:
        """Pending L0 segments across all LSM tables (monitor gauge)."""
        backlog = 0
        for name in self.catalog.table_names:
            heap = self.catalog.table(name).heap
            if heap.self_charging:
                backlog += heap.compaction_backlog
        return backlog

    @property
    def now(self) -> float:
        """Simulated seconds elapsed on this database's clock."""
        return self.clock.now
