"""Public engine facade.

A :class:`Database` bundles clock, metrics, disk model, buffer pool,
catalog, statistics and planner behind a DB-API-flavoured interface:

>>> db = Database()
>>> db.create_table(TableSchema("t", [Column("a", SqlType.integer())]))
>>> db.execute("INSERT INTO t VALUES (1)")
>>> db.execute("SELECT a FROM t").rows
[(1,)]

``prepare()`` returns a reusable parameterized statement planned
*once*, with parameter-blind selectivity estimates — the engine-level
hook SAP's cursor caching uses (and the mechanism behind the paper's
Table 6 optimizer trap).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.engine.catalog import Catalog
from repro.engine.buffer import BufferPool
from repro.engine.errors import PlanError
from repro.engine.exec.base import ExecContext
from repro.engine.expr import Expr, OutputSchema, predicate_holds
from repro.engine.parallel import ParallelPolicy, PartitionManager
from repro.engine.plan.binder import bind_expr
from repro.engine.plan.planner import PlannedQuery, Planner
from repro.engine.schema import TableSchema
from repro.engine.sql.ast import (
    DeleteStmt,
    InsertStmt,
    SelectStmt,
    UpdateStmt,
)
from repro.engine.sql.parser import parse_select, parse_sql
from repro.engine.stats import TableStats, analyze
from repro.sim.clock import SimulatedClock
from repro.sim.disk import DiskModel
from repro.sim.metrics import MetricsCollector
from repro.sim.params import SimParams
from repro.trace.tracer import Tracer


@dataclass
class Result:
    """Query result: column names and materialized rows."""

    columns: list[str]
    rows: list[tuple]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def scalar(self) -> object:
        """First column of the first row (None on empty results)."""
        if not self.rows:
            return None
        return self.rows[0][0]


class PreparedStatement:
    """A statement planned once and executable many times.

    Parameter markers are opaque at plan time, so access paths are
    chosen with default selectivities — exactly what a parameterized
    cursor in a 1990s RDBMS did.
    """

    def __init__(self, database: "Database", sql: str) -> None:
        self._database = database
        self.sql = sql
        self._plan: PlannedQuery | None = None
        stmt = parse_sql(sql)
        if isinstance(stmt, SelectStmt):
            self._plan = database._plan(stmt, sql=sql)
            self._stmt = None
        else:
            self._stmt = stmt
        self.executions = 0

    def execute(self, params: Sequence[object] = ()) -> Result:
        self.executions += 1
        if self._plan is not None:
            return self._database._run_plan(self._plan, params, sql=self.sql)
        assert self._stmt is not None
        return self._database._execute_dml(copy.deepcopy(self._stmt), params,
                                           sql=self.sql)

    def explain(self) -> str:
        if self._plan is None:
            return f"DML({self.sql})"
        return self._plan.operator.explain()


class Database:
    """An isolated engine instance with its own simulated clock."""

    def __init__(self, params: SimParams | None = None,
                 name: str = "db", degree: int = 1) -> None:
        self.name = name
        self.params = params or SimParams()
        self.clock = SimulatedClock()
        self.metrics = MetricsCollector()
        self.disk = DiskModel(
            self.clock, self.metrics,
            seq_read_s=self.params.seq_read_s,
            random_read_s=self.params.random_read_s,
            write_s=self.params.write_s,
            retry_penalty_s=self.params.disk_retry_penalty_s,
            max_retries=self.params.disk_max_retries,
        )
        capacity = max(
            1, self.params.buffer_pool_bytes // self.params.page_size_bytes
        )
        self.buffer_pool = BufferPool(
            capacity, self.disk, self.clock, self.metrics,
            hit_cpu_s=self.params.buffer_hit_s,
        )
        self.catalog = Catalog(self.buffer_pool, self.clock, self.metrics,
                               self.params)
        self.stats: dict[str, TableStats] = {}
        self.ctx = ExecContext(self.clock, self.metrics, self.params,
                               self.buffer_pool)
        self._planner = Planner(self.catalog, self.stats, self.ctx)
        #: hierarchical span tracer (disabled by default, zero-overhead)
        self.tracer = Tracer(self.clock, self.metrics)
        self.ctx.tracer = self.tracer
        #: version-checked partition overlays for parallel scans
        self.partitions = PartitionManager(self.ctx)
        self._partition_choices: dict[str, tuple[str, str]] = {}
        self.degree = 1
        if degree > 1:
            self.set_degree(degree)

    # -- parallelism --------------------------------------------------------

    def set_degree(self, degree: int) -> None:
        """Set the requested degree of parallelism for SELECT plans.

        ``degree=1`` uninstalls the parallel policy entirely, so the
        serial executor runs unchanged — the zero-regression path.
        Already-prepared statements keep the plan they were compiled
        with (cursor caching semantics).
        """
        degree = int(degree)
        if degree < 1:
            raise PlanError(f"degree must be >= 1, got {degree}")
        self.degree = degree
        if degree == 1:
            self._planner.parallel = None
        else:
            self._planner.parallel = ParallelPolicy(
                self.ctx, self.stats, self.partitions, degree,
                partition_choices=self._partition_choices,
            )

    def set_partition_column(self, table_name: str, column: str,
                             kind: str = "hash") -> None:
        """Override the partition key for a table (e.g. to force skew)."""
        table = self.catalog.table(table_name)
        column = column.lower()
        table.schema.column_index(column)  # raises on unknown column
        if kind not in ("hash", "range"):
            raise PlanError(f"unknown partition kind {kind!r}")
        self._partition_choices[table.name] = (column, kind)
        self.partitions.invalidate(table.name)

    def prepartition(self, *table_names: str) -> dict[str, int]:
        """Eagerly build partition overlays (all tables by default).

        Returns table -> degree actually used (tables too small to
        parallelize are skipped).  Without this the first parallel
        query pays the partition-build cost inline.
        """
        policy = self._planner.parallel
        if policy is None:
            return {}
        built: dict[str, int] = {}
        for name in table_names or self.catalog.table_names:
            table = self.catalog.table(name)
            degree = policy.degree_for(table)
            if not degree:
                continue
            spec = policy.spec_for(table, degree)
            if spec is None:
                continue
            self.partitions.get(table, spec)
            built[table.name] = degree
        return built

    # -- DDL ----------------------------------------------------------------

    def create_table(self, schema: TableSchema):
        return self.catalog.create_table(schema)

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)
        self.stats.pop(name.lower(), None)

    def create_index(self, index_name: str, table_name: str,
                     column_names: list[str], unique: bool = False):
        return self.catalog.create_index(index_name, table_name,
                                         column_names, unique=unique)

    def drop_index(self, index_name: str) -> None:
        self.catalog.drop_index(index_name)

    def create_view(self, name: str, select_sql: str) -> None:
        self.catalog.create_view(name, parse_select(select_sql))

    def drop_view(self, name: str) -> None:
        self.catalog.drop_view(name)

    # -- statistics -----------------------------------------------------------

    def analyze(self, table_name: str | None = None) -> None:
        """Collect optimizer statistics (full pass, charges a scan)."""
        names = (
            [table_name.lower()] if table_name else self.catalog.table_names
        )
        for name in names:
            table = self.catalog.table(name)
            # ANALYZE reads the whole table once.
            for _ in table.scan():
                pass
            self.stats[name] = analyze(table)

    # -- query execution ---------------------------------------------------

    def execute(self, sql: str, params: Sequence[object] = ()) -> Result:
        stmt = parse_sql(sql)
        if isinstance(stmt, SelectStmt):
            plan = self._plan(stmt, sql=sql)
            return self._run_plan(plan, params, sql=sql)
        return self._execute_dml(stmt, params, sql=sql)

    def prepare(self, sql: str) -> PreparedStatement:
        return PreparedStatement(self, sql)

    def explain(self, sql: str) -> str:
        stmt = parse_sql(sql)
        if not isinstance(stmt, SelectStmt):
            return f"DML({sql.strip().split()[0].upper()})"
        return self._plan(stmt).operator.explain()

    def _plan(self, stmt: SelectStmt, sql: str | None = None) -> PlannedQuery:
        self.metrics.count("db.plans")
        self.clock.charge(self.params.plan_cpu_s)
        with self.tracer.span("db.plan", sql=sql):
            return self._planner.plan_select(stmt)

    def _run_plan(self, plan: PlannedQuery, params: Sequence[object],
                  sql: str | None = None) -> Result:
        self.metrics.count("db.queries")
        tracer = self.tracer
        if not tracer.enabled:
            rows = list(plan.operator.rows(params))
            return Result(plan.column_names, rows)
        # EXPLAIN ANALYZE mode: instrument the plan (idempotent; the
        # profile accumulates across executions of a cached cursor).
        from repro.engine.exec.profile import attach_profile

        profile = attach_profile(plan.operator, self.clock, self.metrics)
        with tracer.span("db.query", sql=sql) as span:
            rows = list(plan.operator.rows(params))
            span.set(rows=len(rows), profile=profile)
        return Result(plan.column_names, rows)

    # -- DML -------------------------------------------------------------------

    def _execute_dml(self, stmt, params: Sequence[object],
                     sql: str | None = None) -> Result:
        with self.tracer.span("db.dml", sql=sql,
                              kind=type(stmt).__name__) as span:
            result = self._dispatch_dml(stmt, params)
            span.set(rows=result.scalar())
            return result

    def _dispatch_dml(self, stmt, params: Sequence[object]) -> Result:
        if isinstance(stmt, InsertStmt):
            return self._run_insert(stmt, params)
        if isinstance(stmt, DeleteStmt):
            return self._run_delete(stmt, params)
        if isinstance(stmt, UpdateStmt):
            return self._run_update(stmt, params)
        raise PlanError(f"unsupported statement {type(stmt).__name__}")

    def _run_insert(self, stmt: InsertStmt, params: Sequence[object]) -> Result:
        table = self.catalog.table(stmt.table)
        schema = table.schema
        count = 0
        for value_row in stmt.rows:
            values = [expr.eval((), params) for expr in value_row]
            if stmt.columns is None:
                if len(values) != len(schema.columns):
                    raise PlanError(
                        f"INSERT width mismatch for {stmt.table}"
                    )
                row = tuple(values)
            else:
                if len(values) != len(stmt.columns):
                    raise PlanError("INSERT column/value count mismatch")
                by_name = {
                    c.lower(): v for c, v in zip(stmt.columns, values)
                }
                row = tuple(
                    by_name.get(col.name.lower()) for col in schema.columns
                )
            table.insert(row)
            count += 1
        return Result(["inserted"], [(count,)])

    def _matching_rowids(self, table, where: Expr | None,
                         params: Sequence[object]) -> list[int]:
        """Rowids matching WHERE, using an index for simple eq predicates."""
        if where is None:
            return [rowid for rowid, _row in table.heap.scan()]
        schema = OutputSchema(
            [(table.name, c.name) for c in table.schema.columns]
        )
        bind_expr(where, schema)
        # Index-assisted path: cover a prefix of some index with the
        # equality conjuncts, then re-check the full predicate.
        from repro.engine.expr import split_conjuncts
        from repro.engine.plan.access import eq_sarg_value

        eq_values: dict[str, object] = {}
        for conjunct in split_conjuncts(where):
            entry = eq_sarg_value(conjunct)
            if entry is not None and entry[0] not in eq_values:
                eq_values[entry[0]] = entry[1]
        best_index = None
        best_prefix = 0
        for index in table.indexes.values():
            if not hasattr(index, "search_prefix"):
                continue
            prefix = 0
            for column in index.column_names:
                if column in eq_values:
                    prefix += 1
                else:
                    break
            if prefix > best_prefix:
                best_prefix = prefix
                best_index = index
        if best_index is not None:
            key = tuple(
                eq_values[column].eval((), params)
                for column in best_index.column_names[:best_prefix]
            )
            matches = []
            for _key, rowid in best_index.search_prefix(key):
                row = table.fetch_row(rowid)
                if predicate_holds(where, row, params):
                    matches.append(rowid)
            return matches
        matches = []
        for rowid, row in table.scan():
            self.ctx.charge_tuples(1)
            if predicate_holds(where, row, params):
                matches.append(rowid)
        return matches

    def _run_delete(self, stmt: DeleteStmt, params: Sequence[object]) -> Result:
        table = self.catalog.table(stmt.table)
        rowids = self._matching_rowids(table, stmt.where, params)
        for rowid in rowids:
            table.delete(rowid)
        return Result(["deleted"], [(len(rowids),)])

    def _run_update(self, stmt: UpdateStmt, params: Sequence[object]) -> Result:
        table = self.catalog.table(stmt.table)
        schema = OutputSchema(
            [(table.name, c.name) for c in table.schema.columns]
        )
        rowids = self._matching_rowids(table, stmt.where, params)
        positions = []
        for assignment in stmt.assignments:
            positions.append(table.schema.column_index(assignment.column))
            bind_expr(assignment.value, schema)
        for rowid in rowids:
            row = list(table.heap.fetch(rowid))
            old = tuple(row)
            for assignment, pos in zip(stmt.assignments, positions):
                row[pos] = assignment.value.eval(old, params)
            table.update(rowid, tuple(row))
        return Result(["updated"], [(len(rowids),)])

    # -- bulk loading ------------------------------------------------------------

    def bulk_load(self, table_name: str, rows: Iterable[tuple]) -> int:
        """Bulk-load rows (page-at-a-time writes, the fast path SAP's
        batch input never uses)."""
        table = self.catalog.table(table_name)
        count = 0
        for row in rows:
            table.insert(row, bulk=True)
            count += 1
        self.metrics.count(f"db.bulk_loaded.{table.name}", count)
        return count

    # -- storage accounting (the paper's Table 2) ---------------------------------

    def storage_report(self) -> dict[str, dict[str, int]]:
        """Per-table data and index bytes."""
        report: dict[str, dict[str, int]] = {}
        for name in self.catalog.table_names:
            table = self.catalog.table(name)
            report[name] = {
                "rows": table.row_count,
                "data_bytes": table.data_bytes,
                "index_bytes": table.index_bytes,
            }
        return report

    # -- misc ----------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Simulated seconds elapsed on this database's clock."""
        return self.clock.now
