"""B-tree and hash indexes.

The B-tree is modelled as a sorted array of ``(key, rowid)`` entries
with page-accurate accounting: entries-per-page follows from the key
byte width, traversals charge upper-level page touches through the
buffer pool, and leaf walks charge one (mostly cached) page per
``entries_per_page`` entries.  Fetching the *heap* rows an index scan
produces is the caller's job — that is where the paper's Table 6
random-I/O trap lives.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterator

from repro.engine.buffer import BufferPool
from repro.engine.errors import ExecutionError
from repro.engine.schema import TableSchema
from repro.sim.clock import SimulatedClock
from repro.sim.metrics import MetricsCollector

#: bytes per entry beyond the key itself (rowid + slot overhead)
ENTRY_OVERHEAD_BYTES = 8

# Sortable wrapper so NULL keys order before everything else.
_NULL_KEY = (0, 0)


def _sortable(value: object) -> tuple:
    if value is None:
        return _NULL_KEY
    return (1, value)


def make_key(values: tuple) -> tuple:
    """Build a total-order-safe key tuple from column values."""
    return tuple(_sortable(v) for v in values)


class BTreeIndex:
    """Ordered index over one or more columns of a table."""

    def __init__(
        self,
        name: str,
        schema: TableSchema,
        column_names: list[str],
        unique: bool,
        buffer_pool: BufferPool,
        clock: SimulatedClock,
        metrics: MetricsCollector,
        traverse_cpu_s: float,
        page_size_bytes: int,
    ) -> None:
        self.name = name
        self.table_name = schema.name
        self.column_names = [c.lower() for c in column_names]
        self.column_positions = [schema.column_index(c) for c in column_names]
        self.unique = unique
        self._buffer = buffer_pool
        self._clock = clock
        self._metrics = metrics
        self._traverse_cpu_s = traverse_cpu_s
        key_bytes = sum(
            schema.columns[pos].byte_width for pos in self.column_positions
        )
        self.entry_byte_width = key_bytes + ENTRY_OVERHEAD_BYTES
        self.entries_per_page = max(2, page_size_bytes // self.entry_byte_width)
        # Parallel arrays: sort keys and (key, rowid) payloads.
        self._keys: list[tuple] = []
        self._entries: list[tuple[tuple, int]] = []
        self._bulk_pending = 0

    # -- key helpers ----------------------------------------------------

    def key_of_row(self, row: tuple) -> tuple:
        return make_key(tuple(row[pos] for pos in self.column_positions))

    # -- maintenance -----------------------------------------------------

    def insert(self, row: tuple, rowid: int, bulk: bool = False) -> None:
        key = self.key_of_row(row)
        pos = bisect.bisect_left(self._keys, (key, rowid))
        if self.unique:
            probe = bisect.bisect_left(self._keys, (key, -1))
            if probe < len(self._keys) and self._entries[probe][0] == key:
                if key != (_NULL_KEY,) * len(self.column_positions):
                    raise ExecutionError(
                        f"unique index {self.name} violated for key {key}"
                    )
        self._keys.insert(pos, (key, rowid))
        self._entries.insert(pos, (key, rowid))
        if bulk:
            # Deferred index build: page writes amortise over a full
            # leaf, as a bulk loader's sort-and-build pass would.
            self._bulk_pending += 1
            if self._bulk_pending >= self.entries_per_page:
                self._bulk_pending = 0
                self._buffer.write(self._file_name,
                                   self._leaf_page(pos), fresh=True)
            return
        self._charge_traverse()
        self._buffer.write(self._file_name, self._leaf_page(pos))

    def delete(self, row: tuple, rowid: int) -> None:
        key = self.key_of_row(row)
        pos = bisect.bisect_left(self._keys, (key, rowid))
        if pos >= len(self._keys) or self._keys[pos] != (key, rowid):
            raise ExecutionError(
                f"index {self.name}: missing entry for rowid {rowid}"
            )
        del self._keys[pos]
        del self._entries[pos]
        self._charge_traverse()
        self._buffer.write(self._file_name, self._leaf_page(pos))

    # -- lookups -----------------------------------------------------------

    def search_eq(self, values: tuple) -> list[int]:
        """Rowids whose key equals ``values`` (full-key match)."""
        key = make_key(values)
        self._charge_traverse()
        lo = bisect.bisect_left(self._keys, (key, -1))
        out: list[int] = []
        touched_pages: set[int] = set()
        idx = lo
        while idx < len(self._entries) and self._entries[idx][0] == key:
            page = self._leaf_page(idx)
            if page not in touched_pages:
                touched_pages.add(page)
                self._buffer.access(self._file_name, page, sequential=True)
            out.append(self._entries[idx][1])
            idx += 1
        if not touched_pages:
            self._buffer.access(
                self._file_name, self._leaf_page(min(lo, max(len(self._keys) - 1, 0))),
                sequential=False,
            )
        self._metrics.count("index.eq_lookups")
        return out

    def search_prefix(self, values: tuple) -> Iterator[tuple[tuple, int]]:
        """All entries whose key starts with ``values`` (prefix match)."""
        prefix = make_key(values)
        self._charge_traverse()
        lo = bisect.bisect_left(self._keys, (prefix, -1))
        self._metrics.count("index.prefix_scans")
        yield from self._walk_leaves_while(
            lo, lambda key: key[: len(prefix)] == prefix
        )

    def search_range(
        self,
        low: tuple | None,
        high: tuple | None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[tuple, int]]:
        """Entries with ``low <= key <= high`` on the first key column.

        ``low``/``high`` are single-column value tuples; None means
        unbounded on that side.
        """
        self._charge_traverse()
        self._metrics.count("index.range_scans")
        if low is not None:
            low_key = make_key(low)
            if low_inclusive:
                start = bisect.bisect_left(self._keys, (low_key, -1))
            else:
                start = self._advance_past(low_key)
        else:
            start = self._first_non_null()
        high_key = make_key(high) if high is not None else None

        def in_range(key: tuple) -> bool:
            if high_key is None:
                return True
            head = key[: len(high_key)]
            if high_inclusive:
                return head <= high_key
            return head < high_key

        yield from self._walk_leaves_while(start, in_range)

    def scan_all(self) -> Iterator[tuple[tuple, int]]:
        """Full leaf walk in key order (sequential page charges)."""
        self._charge_traverse()
        yield from self._walk_leaves_while(0, lambda key: True)

    # -- internals ---------------------------------------------------------

    def _advance_past(self, low_key: tuple) -> int:
        idx = bisect.bisect_left(self._keys, (low_key, -1))
        while idx < len(self._entries) and \
                self._entries[idx][0][: len(low_key)] == low_key:
            idx += 1
        return idx

    def _first_non_null(self) -> int:
        # Unbounded-low scans include NULL keys (they sort first); the
        # executor's predicate re-check filters them out where needed.
        return 0

    def _walk_leaves_while(self, start: int, predicate) -> Iterator[tuple[tuple, int]]:
        touched_page = -1
        for idx in range(start, len(self._entries)):
            key, rowid = self._entries[idx]
            if not predicate(key):
                break
            page = self._leaf_page(idx)
            if page != touched_page:
                touched_page = page
                self._buffer.access(self._file_name, page, sequential=True)
            yield key, rowid

    def _leaf_page(self, position: int) -> int:
        return position // self.entries_per_page

    def _charge_traverse(self) -> None:
        self._clock.charge(self._traverse_cpu_s)
        height = self.height
        # Touch the non-leaf levels (root is level 1); these are small
        # and almost always buffer-resident.
        for level in range(max(0, height - 1)):
            self._buffer.access(self._file_name, -(level + 1), sequential=False)

    # -- accounting ----------------------------------------------------------

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    @property
    def leaf_page_count(self) -> int:
        if not self._entries:
            return 0
        return -(-len(self._entries) // self.entries_per_page)

    @property
    def page_count(self) -> int:
        """Leaf pages plus the (geometric) upper levels."""
        leaves = self.leaf_page_count
        total = leaves
        level = leaves
        while level > 1:
            level = -(-level // self.entries_per_page)
            total += level
        return total

    @property
    def size_bytes(self) -> int:
        return len(self._entries) * self.entry_byte_width

    @property
    def height(self) -> int:
        if not self._entries:
            return 1
        return 1 + max(
            0, math.ceil(math.log(max(self.leaf_page_count, 1), self.entries_per_page))
        )

    @property
    def _file_name(self) -> str:
        return f"idx:{self.name}"


class HashIndex:
    """Equality-only index (kept for completeness; catalog may create it)."""

    def __init__(
        self,
        name: str,
        schema: TableSchema,
        column_names: list[str],
        unique: bool,
        buffer_pool: BufferPool,
        clock: SimulatedClock,
        metrics: MetricsCollector,
        traverse_cpu_s: float,
        page_size_bytes: int,
    ) -> None:
        self.name = name
        self.table_name = schema.name
        self.column_names = [c.lower() for c in column_names]
        self.column_positions = [schema.column_index(c) for c in column_names]
        self.unique = unique
        self._buffer = buffer_pool
        self._clock = clock
        self._metrics = metrics
        self._traverse_cpu_s = traverse_cpu_s
        key_bytes = sum(
            schema.columns[pos].byte_width for pos in self.column_positions
        )
        self.entry_byte_width = key_bytes + ENTRY_OVERHEAD_BYTES
        self.entries_per_page = max(2, page_size_bytes // self.entry_byte_width)
        self._buckets: dict[tuple, list[int]] = {}
        self._count = 0

    def key_of_row(self, row: tuple) -> tuple:
        return tuple(row[pos] for pos in self.column_positions)

    def insert(self, row: tuple, rowid: int, bulk: bool = False) -> None:
        key = self.key_of_row(row)
        bucket = self._buckets.setdefault(key, [])
        if self.unique and bucket:
            raise ExecutionError(f"unique hash index {self.name} violated")
        bucket.append(rowid)
        self._count += 1
        if bulk and self._count % self.entries_per_page:
            return
        self._buffer.write(self._file_name, hash(key) % 1024,
                           fresh=bulk)

    def delete(self, row: tuple, rowid: int) -> None:
        key = self.key_of_row(row)
        bucket = self._buckets.get(key)
        if not bucket or rowid not in bucket:
            raise ExecutionError(f"hash index {self.name}: missing {rowid}")
        bucket.remove(rowid)
        self._count -= 1
        self._buffer.write(self._file_name, hash(key) % 1024)

    def search_eq(self, values: tuple) -> list[int]:
        self._clock.charge(self._traverse_cpu_s)
        self._metrics.count("index.eq_lookups")
        self._buffer.access(self._file_name, hash(values) % 1024, sequential=False)
        return list(self._buckets.get(tuple(values), []))

    @property
    def entry_count(self) -> int:
        return self._count

    @property
    def size_bytes(self) -> int:
        return self._count * self.entry_byte_width

    @property
    def page_count(self) -> int:
        if not self._count:
            return 0
        return -(-self._count // self.entries_per_page)

    @property
    def _file_name(self) -> str:
        return f"idx:{self.name}"
