"""Table statistics and selectivity estimation.

The optimizer's behaviour on the paper's Table 6 depends on exactly
this module: with a literal predicate the estimator interpolates
against min/max and sees that ``quantity < 9999`` selects everything
(full scan wins); with a *parameter marker* — which is what SAP's Open
SQL translation produces — no estimate is possible and the optimizer
falls back to :data:`DEFAULT_RANGE_SELECTIVITY`, which is low enough to
make the (catastrophic) index plan look attractive.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

from repro.engine.table import Table

#: System-R style fallbacks when a predicate value is unknown at plan time
DEFAULT_EQ_SELECTIVITY = 0.01
DEFAULT_RANGE_SELECTIVITY = 0.05
DEFAULT_LIKE_SELECTIVITY = 0.10


@dataclass
class ColumnStats:
    n_distinct: int = 0
    min_value: object = None
    max_value: object = None
    null_count: int = 0


@dataclass
class TableStats:
    row_count: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)
    analyzed: bool = False


def analyze(table: Table) -> TableStats:
    """Single-pass statistics collection (the engine's ANALYZE)."""
    stats = TableStats(row_count=table.row_count, analyzed=True)
    names = [c.name.lower() for c in table.schema.columns]
    distinct: list[set] = [set() for _ in names]
    mins: list[object] = [None] * len(names)
    maxs: list[object] = [None] * len(names)
    nulls = [0] * len(names)
    for _rowid, row in table.heap.scan():
        for pos, value in enumerate(row):
            if value is None:
                nulls[pos] += 1
                continue
            if len(distinct[pos]) < 100_000:
                distinct[pos].add(value)
            if mins[pos] is None or value < mins[pos]:
                mins[pos] = value
            if maxs[pos] is None or value > maxs[pos]:
                maxs[pos] = value
    for pos, name in enumerate(names):
        stats.columns[name] = ColumnStats(
            n_distinct=len(distinct[pos]),
            min_value=mins[pos],
            max_value=maxs[pos],
            null_count=nulls[pos],
        )
    return stats


def _as_number(value: object) -> float | None:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, datetime.date):
        return float(value.toordinal())
    return None


def eq_selectivity(stats: TableStats, column: str,
                   value_known: bool) -> float:
    """Selectivity of ``column = const``.

    ``value_known`` is False for parameter markers, in which case the
    per-column distinct count can still be used (the classic 1/NDV
    estimate does not need the value itself).
    """
    col = stats.columns.get(column.lower())
    if col is None or not stats.analyzed or col.n_distinct == 0:
        return DEFAULT_EQ_SELECTIVITY
    return min(1.0, 1.0 / col.n_distinct)


def range_selectivity(
    stats: TableStats,
    column: str,
    op: str,
    value: object,
) -> float:
    """Selectivity of ``column <op> value`` by min/max interpolation.

    ``value`` is the *plan-time* constant; pass ``None`` for parameter
    markers to get the blind default — the heart of the Table 6 trap.
    """
    if value is None:
        return DEFAULT_RANGE_SELECTIVITY
    col = stats.columns.get(column.lower())
    if col is None or not stats.analyzed:
        return DEFAULT_RANGE_SELECTIVITY
    low = _as_number(col.min_value)
    high = _as_number(col.max_value)
    point = _as_number(value)
    if low is None or high is None or point is None:
        return DEFAULT_RANGE_SELECTIVITY
    if high <= low:
        return DEFAULT_RANGE_SELECTIVITY
    fraction = (point - low) / (high - low)
    fraction = min(1.0, max(0.0, fraction))
    if op in ("<", "<="):
        return fraction
    if op in (">", ">="):
        return 1.0 - fraction
    return DEFAULT_RANGE_SELECTIVITY
