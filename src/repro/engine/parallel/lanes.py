"""Worker lanes: the simulated cost model for intra-query parallelism.

A :class:`LaneSet` models N workers executing one plan fragment.  The
simulator is single-threaded, so lanes *run* sequentially — but each
lane's charges are redirected into its own :class:`LaneSink`, leaving
global simulated time frozen while the lane works.  At the
:meth:`LaneSet.barrier` the global clock advances by the *maximum* of
the lanes' accumulated seconds: the fragment takes as long as its
slowest lane, which is exactly how skew erodes speedup.

Because :attr:`SimulatedClock.now` reads lane-local while redirected,
trace spans and operator profiles opened inside a lane measure that
lane's own progress, and sibling lane spans come out as overlapping
windows starting at the same global instant — concurrent on the time
axis, as they should be.

Statement deadlines are only evaluated against global time, so a
timeout armed around a parallel query fires at the barrier (when the
max is charged for real) rather than inside a lane.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.sim.clock import LaneSink, SimulatedClock

T = TypeVar("T")


class WorkerLane:
    """One worker: its sink plus bookkeeping for multi-phase fragments."""

    __slots__ = ("index", "sink", "folded_s")

    def __init__(self, index: int) -> None:
        self.index = index
        self.sink = LaneSink()
        #: seconds already folded into the global clock by past barriers
        self.folded_s = 0.0

    @property
    def total_s(self) -> float:
        """All simulated seconds this lane has accumulated."""
        return self.sink.seconds

    @property
    def phase_s(self) -> float:
        """Seconds accumulated since the last barrier."""
        return self.sink.seconds - self.folded_s


class LaneSet:
    """N lanes plus barrier semantics over one shared clock."""

    def __init__(self, clock: SimulatedClock, degree: int) -> None:
        if degree < 1:
            raise ValueError(f"degree must be positive: {degree}")
        self.clock = clock
        self.lanes = [WorkerLane(i) for i in range(degree)]

    @property
    def degree(self) -> int:
        return len(self.lanes)

    def run(self, index: int, fn: Callable[[], T]) -> T:
        """Execute ``fn`` on lane ``index``: charges go to its sink."""
        lane = self.lanes[index]
        with self.clock.redirect(lane.sink):
            return fn()

    def barrier(self) -> float:
        """Synchronize: charge the slowest lane's phase time globally.

        Returns the seconds charged.  Multi-phase fragments (e.g. a
        repartition join's shuffle then probe) call this between
        phases; each barrier folds only the time accumulated since the
        previous one, so total fragment time is the sum of per-phase
        maxima — a straggler in *any* phase stalls the whole fragment.
        """
        slowest = max(lane.phase_s for lane in self.lanes)
        for lane in self.lanes:
            lane.folded_s = lane.sink.seconds
        self.clock.charge(slowest)
        return slowest

    def lane_seconds(self) -> list[float]:
        """Per-lane totals, for span attributes and skew reporting."""
        return [lane.total_s for lane in self.lanes]

    def skew(self) -> float:
        """max/mean of lane totals; 1.0 means perfectly balanced."""
        totals = self.lane_seconds()
        mean = sum(totals) / len(totals)
        if mean <= 0:
            return 1.0
        return max(totals) / mean
