"""Intra-query parallel execution: partitioned storage, worker lanes,
exchange operators, and degree-of-parallelism planning.

See :mod:`repro.engine.parallel.partition` for the deterministic
partition overlay, :mod:`repro.engine.parallel.lanes` for the
worker-lane cost model on the simulated clock, and
:mod:`repro.engine.parallel.policy` for plan parallelization.  The
exchange operators themselves live in
:mod:`repro.engine.exec.parallel` next to the other physical
operators.
"""

from repro.engine.parallel.lanes import LaneSet, WorkerLane
from repro.engine.parallel.partition import (
    HeapPartition,
    PartitionedHeap,
    PartitionManager,
    PartitionSpec,
    stable_hash,
)
from repro.engine.parallel.policy import ParallelPolicy

__all__ = [
    "HeapPartition",
    "LaneSet",
    "ParallelPolicy",
    "PartitionManager",
    "PartitionSpec",
    "PartitionedHeap",
    "WorkerLane",
    "stable_hash",
]
