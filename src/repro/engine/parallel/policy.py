"""Degree-of-parallelism selection and serial-to-parallel plan rewrite.

The planner produces its serial physical plan first; when a
:class:`ParallelPolicy` is active (``Database(degree=N)`` with N > 1)
the finished top-level plan is handed to :meth:`ParallelPolicy.
parallelize`, which pattern-matches parallelizable shapes and splices
in fragments:

* ``GroupAggregate`` over a partitionable scan chain becomes two-phase
  aggregation: per-lane :class:`PartialAggregate` trees under a
  :class:`Gather`, merged by a :class:`FinalAggregate` (DISTINCT
  aggregates stay serial — their states do not merge);
* ``HashJoin`` whose *probe* side is a partitionable scan chain becomes
  a :class:`ParallelHashJoin`; the build side stays serial at the
  coordinator, and ``engine.stats`` cardinalities choose **broadcast**
  (small build: every lane gets the whole table) vs. **repartition**
  (large build: both sides shuffled by join-key hash);
* any remaining partitionable scan chain becomes a plain
  :class:`Gather` over per-lane :class:`PartitionScan` trees.

The degree for each fragment comes from table statistics: the
requested degree, capped by ``parallel_max_degree`` and by the number
of lanes the table can feed with ``parallel_min_rows_per_lane`` rows
each.  Tables too small to feed two lanes stay serial.  The partition
key defaults to the first primary-key column with enough distinct
values to spread rows (skipping degenerate leading columns like SAP's
single-valued MANDT); ``Database.set_partition_column`` overrides the
choice, which is also how the deliberately-skewed experiments pick a
low-cardinality key.

Only top-level plans are rewritten — views and subqueries plan through
the same code path recursively, and nesting fragments inside lanes is
never profitable in this cost model (and is guarded against at
runtime).  At ``degree=1`` no policy is installed at all, so the
serial executor runs byte-for-byte unchanged — the zero-regression
invariant.
"""

from __future__ import annotations

from typing import Callable

from repro.engine.exec.base import ExecContext, Operator
from repro.engine.exec.aggregate import GroupAggregate
from repro.engine.exec.joins import (
    HashJoin,
    IndexNestedLoopJoin,
    MergeJoin,
    NestedLoopJoin,
)
from repro.engine.exec.misc import Alias, Distinct, Filter, Limit, Project
from repro.engine.exec.parallel import (
    FinalAggregate,
    Gather,
    ParallelHashJoin,
    PartialAggregate,
    PartitionScan,
)
from repro.engine.exec.scans import SeqScan
from repro.engine.exec.sort import Sort
from repro.engine.parallel.partition import PartitionManager, PartitionSpec
from repro.engine.stats import TableStats
from repro.engine.table import Table

#: a lane source: builds one lane's operator tree, plus the fragment degree
LaneBuilder = Callable[[int], Operator]


class ParallelPolicy:
    """Chooses degrees and rewrites serial plans into parallel ones."""

    def __init__(
        self,
        ctx: ExecContext,
        stats_store: dict[str, TableStats],
        manager: PartitionManager,
        requested_degree: int,
        partition_choices: dict[str, tuple[str, str]] | None = None,
    ) -> None:
        self.ctx = ctx
        self.stats = stats_store
        self.manager = manager
        self.requested = max(1, int(requested_degree))
        #: table -> (column, kind) overrides from set_partition_column
        self.partition_choices = partition_choices \
            if partition_choices is not None else {}

    # -- degree & key selection ------------------------------------------

    def degree_for(self, table: Table) -> int:
        """Lanes this table can feed (0 when not worth parallelizing)."""
        stats = self.stats.get(table.name)
        rows = stats.row_count if stats is not None and stats.analyzed \
            else table.row_count
        params = self.ctx.params
        degree = min(
            self.requested,
            params.parallel_max_degree,
            rows // max(1, params.parallel_min_rows_per_lane),
        )
        return degree if degree >= 2 else 0

    def partition_choice(self, table: Table,
                         degree: int) -> tuple[str, str] | None:
        """(column, kind) to partition ``table`` by, or None."""
        override = self.partition_choices.get(table.name)
        if override is not None:
            return override
        candidates = [c.lower() for c in table.schema.primary_key]
        if not candidates:
            if not table.schema.columns:
                return None
            candidates = [table.schema.columns[0].name.lower()]
        stats = self.stats.get(table.name)
        if stats is not None and stats.analyzed:
            # Skip degenerate leading key columns (e.g. MANDT, a single
            # client value in every row): they would hash every row
            # into one partition.
            for column in candidates:
                col_stats = stats.columns.get(column)
                if col_stats is not None \
                        and col_stats.n_distinct >= degree * 4:
                    return column, "hash"
        return candidates[0], "hash"

    def spec_for(self, table: Table, degree: int) -> PartitionSpec | None:
        choice = self.partition_choice(table, degree)
        if choice is None:
            return None
        column, kind = choice
        return PartitionSpec(column=column, degree=degree, kind=kind,
                             seed=self.ctx.params.parallel_hash_seed)

    # -- scan-chain matching ---------------------------------------------

    def _lane_sources(
        self, op: Operator
    ) -> tuple[LaneBuilder, int] | None:
        """Match a Filter*/SeqScan chain; return a per-lane tree builder.

        Each lane gets a *distinct* operator tree (profiling attaches
        per lane); the bound predicate expressions are shared — they
        are evaluated read-only.
        """
        filters: list = []
        node = op
        while isinstance(node, Filter):
            filters.append(node.predicate)
            node = node.child
        if not isinstance(node, SeqScan):
            return None
        table = node.table
        degree = self.degree_for(table)
        if not degree:
            return None
        spec = self.spec_for(table, degree)
        if spec is None:
            return None
        scan = node
        per_lane_rows = max(scan.estimated_rows / degree, 0.01)

        def build(lane: int) -> Operator:
            out: Operator = PartitionScan(
                self.ctx, self.manager, table, spec, lane,
                alias=scan.alias, predicate=scan.predicate,
            )
            out.estimated_rows = per_lane_rows
            for predicate in reversed(filters):
                out = Filter(self.ctx, out, predicate)
                out.estimated_rows = per_lane_rows
            return out

        return build, degree

    # -- plan rewrite -----------------------------------------------------

    def parallelize(self, op: Operator) -> Operator:
        """Rewrite a finished serial plan; returns the (new) root."""
        return self._rewrite(op)

    def _rewrite(self, op: Operator) -> Operator:
        if isinstance(op, GroupAggregate):
            return self._rewrite_aggregate(op)
        if isinstance(op, HashJoin):
            return self._rewrite_hash_join(op)
        if isinstance(op, (SeqScan, Filter)):
            source = self._lane_sources(op)
            if source is not None:
                build, degree = source
                gather = Gather(self.ctx,
                                [build(lane) for lane in range(degree)])
                gather.estimated_rows = op.estimated_rows
                return gather
            if isinstance(op, Filter):
                op.child = self._rewrite(op.child)
            return op
        if isinstance(op, (Project, Distinct, Limit, Alias, Sort)):
            op.child = self._rewrite(op.child)
            return op
        if isinstance(op, (NestedLoopJoin, MergeJoin)):
            op.left = self._rewrite(op.left)
            op.right = self._rewrite(op.right)
            return op
        if isinstance(op, IndexNestedLoopJoin):
            op.left = self._rewrite(op.left)
            return op
        return op

    def _rewrite_aggregate(self, op: GroupAggregate) -> Operator:
        if not any(call.distinct for call in op.agg_calls):
            source = self._lane_sources(op.child)
            if source is not None:
                build, degree = source
                partials = []
                for lane in range(degree):
                    partial = PartialAggregate(
                        self.ctx, build(lane), op.group_exprs, op.agg_calls
                    )
                    partial.estimated_rows = max(
                        op.estimated_rows / degree, 1.0)
                    partials.append(partial)
                gather = Gather(self.ctx, partials)
                gather.estimated_rows = max(op.estimated_rows, 1.0) * degree
                final = FinalAggregate(self.ctx, gather,
                                       len(op.group_exprs), op.agg_calls)
                final.estimated_rows = op.estimated_rows
                return final
        op.child = self._rewrite(op.child)
        return op

    def _rewrite_hash_join(self, op: HashJoin) -> Operator:
        if op.build_left:
            build_side, probe_side = op.left, op.right
            build_keys, probe_keys = (op.left_key_positions,
                                      op.right_key_positions)
        else:
            build_side, probe_side = op.right, op.left
            build_keys, probe_keys = (op.right_key_positions,
                                      op.left_key_positions)
        source = self._lane_sources(probe_side)
        if source is None:
            op.left = self._rewrite(op.left)
            op.right = self._rewrite(op.right)
            return op
        build, degree = source
        # The build side stays serial but may itself contain a deeper
        # parallel fragment — it executes at the coordinator, where
        # fragments are legal.
        build_side = self._rewrite(build_side)
        build_estimate = max(build_side.estimated_rows, 1.0)
        strategy = (
            "broadcast"
            if build_estimate <= self.ctx.params.parallel_broadcast_rows
            else "repartition"
        )
        join = ParallelHashJoin(
            self.ctx,
            build_side,
            [build(lane) for lane in range(degree)],
            build_keys,
            probe_keys,
            probe_is_left=not op.build_left,
            strategy=strategy,
            residual=op.residual,
            seed=self.ctx.params.parallel_hash_seed,
        )
        join.estimated_rows = op.estimated_rows
        return join
