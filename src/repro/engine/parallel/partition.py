"""Partitioned heap storage: a deterministic overlay on ``HeapFile``.

A :class:`PartitionedHeap` splits one table's live rowids into N
partitions without moving any data: each partition is a rowid list with
its own re-packed page numbering, scanned through the buffer pool under
a virtual file name (``<table>#p<i>of<n>``) so per-partition page
accounting is exact — ``ceil(assigned_slots / rows_per_page)`` pages
per partition, tombstoned slots included until the next rebuild.

Partition assignment is deterministic across processes and runs:

* **hash** partitioning uses :func:`stable_hash` (CRC-32 over a
  canonical byte encoding — Python's builtin ``hash`` is salted per
  process and would break reproducibility);
* **range** partitioning computes equi-depth boundaries from the key
  values observed at build time and routes by :mod:`bisect`.

The overlay is a *snapshot*: it is keyed on ``HeapFile.version`` and
the :class:`PartitionManager` rebuilds it lazily after any mutation.
Rows deleted after a build are skipped by the scan (the rowid resolves
to a tombstone); rows inserted after a build are only visible after the
rebuild the next parallel query triggers.
"""

from __future__ import annotations

import bisect
import zlib
from dataclasses import dataclass

from repro.engine.errors import PlanError
from repro.engine.exec.base import ExecContext
from repro.engine.table import Table


def _canonical_bytes(value: object) -> bytes:
    """A stable byte encoding of a partition-key value."""
    if value is None:
        return b"\x00<null>"
    if isinstance(value, str):
        return value.encode("utf-8", "surrogatepass")
    # ints, floats, Decimals, dates: repr is stable across runs
    return repr(value).encode("ascii", "backslashreplace")


def stable_hash(value: object, seed: int = 0) -> int:
    """Deterministic 32-bit hash of a partition-key value.

    The same (value, seed) pair hashes identically in every process —
    the property the cross-run partition-assignment determinism test
    pins down.
    """
    return zlib.crc32(_canonical_bytes(value), seed & 0xFFFFFFFF)


@dataclass(frozen=True)
class PartitionSpec:
    """How one table is split: key column, partition count, scheme."""

    column: str
    degree: int
    kind: str = "hash"  # "hash" | "range"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.degree < 2:
            raise PlanError(f"partition degree must be >= 2: {self.degree}")
        if self.kind not in ("hash", "range"):
            raise PlanError(f"unknown partition kind {self.kind!r}")


class HeapPartition:
    """One partition: an ordered rowid list with local page numbering."""

    __slots__ = ("index", "file_name", "rowids", "rows_per_page")

    def __init__(self, index: int, file_name: str, rowids: list[int],
                 rows_per_page: int) -> None:
        self.index = index
        self.file_name = file_name
        self.rowids = rowids
        self.rows_per_page = rows_per_page

    @property
    def page_count(self) -> int:
        """Pages this partition occupies (snapshot slots, packed)."""
        if not self.rowids:
            return 0
        return -(-len(self.rowids) // self.rows_per_page)

    def page_of(self, local_slot: int) -> int:
        return local_slot // self.rows_per_page


class PartitionedHeap:
    """A full partitioning of one table under one :class:`PartitionSpec`."""

    def __init__(self, table: Table, spec: PartitionSpec) -> None:
        self.table = table
        self.spec = spec
        self.version = table.heap.version
        self.key_position = table.schema.column_index(spec.column)
        self.boundaries: list[object] = []
        rowid_lists: list[list[int]] = [[] for _ in range(spec.degree)]
        if spec.kind == "range":
            self.boundaries = self._equi_depth_boundaries()
        for rowid, row in table.heap.scan():
            rowid_lists[self.partition_of(row[self.key_position])] \
                .append(rowid)
        rpp = table.heap.rows_per_page
        self.partitions = [
            HeapPartition(
                i, f"{table.name}#p{i}of{spec.degree}", rowids, rpp
            )
            for i, rowids in enumerate(rowid_lists)
        ]

    def _equi_depth_boundaries(self) -> list[object]:
        """Upper-exclusive split points from the observed key values."""
        values = sorted(
            row[self.key_position]
            for _rowid, row in self.table.heap.scan()
            if row[self.key_position] is not None
        )
        if not values:
            return []
        n = self.spec.degree
        return [values[(len(values) * i) // n] for i in range(1, n)]

    def partition_of(self, value: object) -> int:
        """Deterministic partition index for one key value."""
        if self.spec.kind == "hash":
            return stable_hash(value, self.spec.seed) % self.spec.degree
        if value is None:
            return 0
        return bisect.bisect_right(self.boundaries, value)

    # -- accounting ------------------------------------------------------

    @property
    def total_pages(self) -> int:
        return sum(p.page_count for p in self.partitions)

    def row_counts(self) -> list[int]:
        """Snapshot rows per partition (the skew evidence)."""
        return [len(p.rowids) for p in self.partitions]

    def skew(self) -> float:
        """max/mean partition fill; 1.0 is perfectly balanced."""
        counts = self.row_counts()
        total = sum(counts)
        if not total:
            return 1.0
        return max(counts) * len(counts) / total


class PartitionManager:
    """Version-checked cache of :class:`PartitionedHeap` overlays.

    Building a partitioning charges one sequential read of the table
    (the partitioner has to look at every key) plus per-row CPU; the
    overlay is then reused until the heap mutates.  On rebuild the old
    virtual partition files are invalidated in the buffer pool so stale
    pages cannot serve hits.
    """

    def __init__(self, ctx: ExecContext) -> None:
        self.ctx = ctx
        self._cache: dict[tuple[str, str, str, int, int],
                          PartitionedHeap] = {}

    def get(self, table: Table, spec: PartitionSpec) -> PartitionedHeap:
        key = (table.name, spec.column, spec.kind, spec.degree, spec.seed)
        cached = self._cache.get(key)
        if cached is not None and cached.version == table.heap.version:
            return cached
        if cached is not None:
            for partition in cached.partitions:
                self.ctx.buffer_pool.invalidate_file(partition.file_name)
        built = self._build(table, spec)
        self._cache[key] = built
        return built

    def _build(self, table: Table, spec: PartitionSpec) -> PartitionedHeap:
        params = self.ctx.params
        self.ctx.clock.charge(
            table.heap.page_count * params.seq_read_s
            + table.row_count * params.tuple_cpu_s
        )
        self.ctx.metrics.count("parallel.partition_builds")
        self.ctx.metrics.count("parallel.partition_build_rows",
                               table.row_count)
        built = PartitionedHeap(table, spec)
        # The partitioner materializes the partitions, so their pages
        # are resident afterwards: prime them through the buffer pool
        # (paying the write-out here rather than as cold misses inside
        # the first parallel query's lanes).
        for partition in built.partitions:
            for page in range(partition.page_count):
                self.ctx.buffer_pool.access(partition.file_name, page,
                                            sequential=True)
        return built

    def invalidate(self, table_name: str) -> None:
        """Drop cached overlays for one table (partition-column change)."""
        stale = [key for key in self._cache if key[0] == table_name.lower()]
        for key in stale:
            for partition in self._cache[key].partitions:
                self.ctx.buffer_pool.invalidate_file(partition.file_name)
            del self._cache[key]
