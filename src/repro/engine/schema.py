"""Table schemas: columns, keys, and row width accounting."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.errors import CatalogError
from repro.engine.types import SqlType


@dataclass(frozen=True)
class Column:
    """A named, typed column; ``nullable`` defaults to True."""

    name: str
    sql_type: SqlType
    nullable: bool = True

    @property
    def byte_width(self) -> int:
        return self.sql_type.byte_width


# Per-row storage overhead (slot pointer + row header), in bytes.
ROW_OVERHEAD_BYTES = 8


@dataclass
class TableSchema:
    """Schema of one physical table.

    ``primary_key`` lists column names forming the primary key; an empty
    list means no primary key (allowed for e.g. staging tables).
    """

    name: str
    columns: list[Column]
    primary_key: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for col in self.columns:
            lowered = col.name.lower()
            if lowered in seen:
                raise CatalogError(f"duplicate column {col.name} in {self.name}")
            seen.add(lowered)
        for key_col in self.primary_key:
            if not self.has_column(key_col):
                raise CatalogError(
                    f"primary key column {key_col} not in table {self.name}"
                )
        self._index_by_name = {
            col.name.lower(): i for i, col in enumerate(self.columns)
        }

    # -- lookups -------------------------------------------------------

    def has_column(self, name: str) -> bool:
        return name.lower() in {c.name.lower() for c in self.columns}

    def column_index(self, name: str) -> int:
        try:
            return self._index_by_name[name.lower()]
        except KeyError:
            raise CatalogError(f"no column {name} in table {self.name}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    # -- storage accounting ---------------------------------------------

    @property
    def row_byte_width(self) -> int:
        """On-disk bytes per row including per-row overhead."""
        return sum(c.byte_width for c in self.columns) + ROW_OVERHEAD_BYTES

    def validate_row(self, row: tuple) -> tuple:
        """Type-check and coerce a full-width row tuple."""
        if len(row) != len(self.columns):
            raise CatalogError(
                f"row width {len(row)} != {len(self.columns)} for {self.name}"
            )
        return tuple(
            col.sql_type.validate(value) for col, value in zip(self.columns, row)
        )
