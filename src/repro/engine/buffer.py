"""Buffer pool with LRU replacement.

Every page touch in the engine flows through here.  Hits charge a tiny
CPU cost; misses charge the disk model (sequential or random, as
declared by the caller).  The pool's capacity defaults to the paper's
SAP-default 10 MB.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.sim.clock import SimulatedClock
from repro.sim.disk import DiskModel
from repro.sim.metrics import MetricsCollector


class BufferPool:
    """LRU page cache keyed by ``(file_name, page_no)``."""

    def __init__(
        self,
        capacity_pages: int,
        disk: DiskModel,
        clock: SimulatedClock,
        metrics: MetricsCollector,
        hit_cpu_s: float,
    ) -> None:
        if capacity_pages < 1:
            raise ValueError("buffer pool needs at least one page")
        self.capacity_pages = capacity_pages
        self._disk = disk
        self._clock = clock
        self._metrics = metrics
        self._hit_cpu_s = hit_cpu_s
        self._pages: OrderedDict[tuple[str, int], None] = OrderedDict()

    def access(self, file_name: str, page_no: int, sequential: bool) -> bool:
        """Touch a page; returns True on hit.  Misses charge the disk."""
        key = (file_name, page_no)
        if key in self._pages:
            self._pages.move_to_end(key)
            self._metrics.count("buffer.hits")
            self._clock.charge(self._hit_cpu_s)
            return True
        self._metrics.count("buffer.misses")
        self._disk.read_page(sequential)
        self._pages[key] = None
        if len(self._pages) > self.capacity_pages:
            self._pages.popitem(last=False)
        return False

    def write(self, file_name: str, page_no: int,
              fresh: bool = False) -> None:
        """Dirty-page write-through (simplified: charge immediately).

        ``fresh`` marks newly allocated pages (spill runs, bulk-load
        extents): they are installed without the read-modify-write a
        non-resident existing page would need.
        """
        key = (file_name, page_no)
        if key not in self._pages:
            if fresh:
                self._pages[key] = None
                if len(self._pages) > self.capacity_pages:
                    self._pages.popitem(last=False)
            else:
                self.access(file_name, page_no, sequential=False)
        self._disk.write_page()

    def invalidate_file(self, file_name: str) -> None:
        """Drop all cached pages of one file (e.g. after reorganisation)."""
        stale = [key for key in self._pages if key[0] == file_name]
        for key in stale:
            del self._pages[key]

    def clear(self) -> None:
        self._pages.clear()

    def resize(self, capacity_pages: int) -> None:
        """Change the pool size (evicting LRU pages if shrinking)."""
        if capacity_pages < 1:
            raise ValueError("buffer pool needs at least one page")
        self.capacity_pages = capacity_pages
        while len(self._pages) > capacity_pages:
            self._pages.popitem(last=False)

    @property
    def resident_pages(self) -> int:
        return len(self._pages)
