"""A from-scratch relational engine (the paper's unnamed commercial RDBMS).

The engine provides everything the paper's back-end provides that the
experiments are sensitive to:

* a SQL front end (lexer/parser) for a practical SQL-92 subset,
* a cost-based optimizer with table statistics, access-path selection,
  join ordering and join-method choice,
* a volcano-style executor with full scans, index scans, nested-loop /
  index-nested-loop / hash / sort-merge joins, sorting, grouping,
  aggregation and DML,
* page-based storage accounting, a buffer pool and B-tree/hash indexes,
* parameterized queries with reusable cursors (the hook SAP's cursor
  caching depends on — and the hook that breaks selectivity estimation
  in the paper's Table 6).

Everything is deterministic; all performance-relevant actions charge a
shared :class:`repro.sim.SimulatedClock`.
"""

from repro.engine.database import Database
from repro.engine.schema import Column, TableSchema
from repro.engine.types import SqlType

__all__ = ["Database", "Column", "TableSchema", "SqlType"]
