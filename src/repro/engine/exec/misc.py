"""Small plumbing operators: Filter, Project, Distinct, Limit, Rows."""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.engine.exec.base import ExecContext, Operator
from repro.engine.expr import Expr, OutputSchema, predicate_holds


class Filter(Operator):
    def __init__(self, ctx: ExecContext, child: Operator,
                 predicate: Expr) -> None:
        super().__init__(ctx, child.schema)
        self.child = child
        self.predicate = predicate

    def rows(self, params: Sequence[object]) -> Iterator[tuple]:
        for row in self.child.rows(params):
            self.ctx.charge_tuples(1)
            if predicate_holds(self.predicate, row, params):
                yield row

    def describe(self) -> str:
        return "Filter"

    def child_operators(self) -> list[Operator]:
        return [self.child]


class Project(Operator):
    def __init__(
        self,
        ctx: ExecContext,
        child: Operator,
        exprs: list[Expr],
        names: list[str],
    ) -> None:
        super().__init__(ctx, OutputSchema([(None, n) for n in names]))
        self.child = child
        self.exprs = exprs

    def rows(self, params: Sequence[object]) -> Iterator[tuple]:
        for row in self.child.rows(params):
            self.ctx.charge_tuples(1)
            yield tuple(expr.eval(row, params) for expr in self.exprs)

    def describe(self) -> str:
        return f"Project({len(self.exprs)} cols)"

    def child_operators(self) -> list[Operator]:
        return [self.child]


class Distinct(Operator):
    def __init__(self, ctx: ExecContext, child: Operator) -> None:
        super().__init__(ctx, child.schema)
        self.child = child

    def rows(self, params: Sequence[object]) -> Iterator[tuple]:
        seen: set[tuple] = set()
        for row in self.child.rows(params):
            self.ctx.charge_tuples(1)
            if row not in seen:
                seen.add(row)
                yield row

    def describe(self) -> str:
        return "Distinct"

    def child_operators(self) -> list[Operator]:
        return [self.child]


class Limit(Operator):
    def __init__(self, ctx: ExecContext, child: Operator, limit: int) -> None:
        super().__init__(ctx, child.schema)
        self.child = child
        self.limit = limit

    def rows(self, params: Sequence[object]) -> Iterator[tuple]:
        if self.limit <= 0:
            return
        emitted = 0
        for row in self.child.rows(params):
            yield row
            emitted += 1
            if emitted >= self.limit:
                return

    def describe(self) -> str:
        return f"Limit({self.limit})"

    def child_operators(self) -> list[Operator]:
        return [self.child]


class Alias(Operator):
    """Re-qualify a child's output columns under a new binding name."""

    def __init__(self, ctx: ExecContext, child: Operator, binding: str,
                 column_names: list[str]) -> None:
        super().__init__(
            ctx, OutputSchema([(binding, n) for n in column_names])
        )
        self.child = child
        self.estimated_rows = child.estimated_rows

    def rows(self, params: Sequence[object]) -> Iterator[tuple]:
        return self.child.rows(params)

    def describe(self) -> str:
        return f"Alias({self.schema.entries[0][0]})"

    def child_operators(self) -> list[Operator]:
        return [self.child]


class RowsSource(Operator):
    """Operator over pre-materialized rows (view results, test fixtures)."""

    def __init__(self, ctx: ExecContext, schema: OutputSchema,
                 rows: list[tuple]) -> None:
        super().__init__(ctx, schema)
        self._rows = rows

    def rows(self, params: Sequence[object]) -> Iterator[tuple]:
        for row in self._rows:
            self.ctx.charge_tuples(1)
            yield row

    def describe(self) -> str:
        return f"RowsSource({len(self._rows)} rows)"
