"""Table access operators: sequential scan and index scans."""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.engine.exec.base import ExecContext, Operator
from repro.engine.expr import Expr, OutputSchema, predicate_holds
from repro.engine.table import Table


def table_schema(table: Table, alias: str | None) -> OutputSchema:
    binding = (alias or table.name).lower()
    return OutputSchema(
        [(binding, c.name) for c in table.schema.columns]
    )


class SeqScan(Operator):
    """Full sequential scan with an optional pushed-down filter."""

    def __init__(
        self,
        ctx: ExecContext,
        table: Table,
        alias: str | None = None,
        predicate: Expr | None = None,
    ) -> None:
        super().__init__(ctx, table_schema(table, alias))
        self.table = table
        self.alias = alias
        self.predicate = predicate

    def rows(self, params: Sequence[object]) -> Iterator[tuple]:
        predicate = self.predicate
        for _rowid, row in self.table.scan():
            self.ctx.charge_tuples(1)
            if predicate is None or predicate_holds(predicate, row, params):
                yield row

    def describe(self) -> str:
        filt = " (filtered)" if self.predicate is not None else ""
        return f"SeqScan({self.table.name}{filt})"


class IndexEqScan(Operator):
    """Point lookup: index equality probe + heap fetches."""

    def __init__(
        self,
        ctx: ExecContext,
        table: Table,
        index_name: str,
        key_exprs: list[Expr],
        alias: str | None = None,
        residual: Expr | None = None,
    ) -> None:
        super().__init__(ctx, table_schema(table, alias))
        self.table = table
        self.index = table.indexes[index_name.lower()]
        self.key_exprs = key_exprs
        self.residual = residual

    def rows(self, params: Sequence[object]) -> Iterator[tuple]:
        key = tuple(expr.eval((), params) for expr in self.key_exprs)
        if len(key) == len(self.index.column_names):
            rowids = self.index.search_eq(key)
        else:
            rowids = [rowid for _key, rowid in self.index.search_prefix(key)]
        for rowid in rowids:
            row = self.table.fetch_row(rowid, sequential=False)
            self.ctx.charge_tuples(1)
            if self.residual is None or predicate_holds(
                    self.residual, row, params):
                yield row

    def describe(self) -> str:
        return f"IndexEqScan({self.table.name} via {self.index.name})"


class IndexRangeScan(Operator):
    """Range scan on the index's first column + random heap fetches.

    This operator is the paper's Table 6 trap: on a non-selective
    predicate every qualifying entry costs a random heap page fetch.
    When no entry qualifies only the index is consulted — the paper's
    sub-second high-selectivity case.
    """

    def __init__(
        self,
        ctx: ExecContext,
        table: Table,
        index_name: str,
        low: Expr | None,
        high: Expr | None,
        low_inclusive: bool,
        high_inclusive: bool,
        alias: str | None = None,
        residual: Expr | None = None,
    ) -> None:
        super().__init__(ctx, table_schema(table, alias))
        self.table = table
        self.index = table.indexes[index_name.lower()]
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.residual = residual

    def rows(self, params: Sequence[object]) -> Iterator[tuple]:
        low_value = (self.low.eval((), params),) if self.low else None
        high_value = (self.high.eval((), params),) if self.high else None
        entries = self.index.search_range(
            low_value, high_value, self.low_inclusive, self.high_inclusive
        )
        for key, rowid in entries:
            if key[0] == (0, 0):  # NULL keys never satisfy a range
                continue
            row = self.table.fetch_row(rowid, sequential=False)
            self.ctx.charge_tuples(1)
            if self.residual is None or predicate_holds(
                    self.residual, row, params):
                yield row

    def describe(self) -> str:
        return f"IndexRangeScan({self.table.name} via {self.index.name})"
