"""Volcano-style physical operators."""
