"""Sorting: shared helper + the Sort operator.

Sorting charges n·log2(n) comparisons and, when the input exceeds
working memory, the write+read of external merge runs.  The *pipelined*
sort→group path (sort feeding aggregation without an intermediate
write) is what the paper credits the RDBMS with in Section 4.2; the
SAP application server's two-phase EXTRACT/SORT materialization is
modelled in :mod:`repro.r3.abap`.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

from repro.engine.exec.base import ExecContext, Operator


class _SortKeyWrapper:
    """Comparison wrapper: None sorts first, descending inverts."""

    __slots__ = ("value", "descending")

    def __init__(self, value: object, descending: bool) -> None:
        self.value = value
        self.descending = descending

    def __lt__(self, other: "_SortKeyWrapper") -> bool:
        a, b = self.value, other.value
        if a is None and b is None:
            return False
        if a is None:
            return not self.descending
        if b is None:
            return self.descending
        if self.descending:
            return b < a
        return a < b

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKeyWrapper) and self.value == other.value


def sort_rows(
    ctx: ExecContext,
    rows: list[tuple],
    keys: list[tuple[int, bool]],
    schema_width: int,
) -> list[tuple]:
    """Sort materialized rows by (position, descending) keys, with costs."""
    count = len(rows)
    if count > 1:
        ctx.charge_comparisons(count * math.log2(count))
    byte_count = count * ctx.row_bytes(schema_width)
    if byte_count > ctx.params.work_mem_bytes:
        ctx.charge_spill(byte_count, "sort")
        ctx.metrics.count("exec.external_sorts")
    rows.sort(
        key=lambda row: tuple(
            _SortKeyWrapper(row[pos], desc) for pos, desc in keys
        )
    )
    return rows


class Sort(Operator):
    """Materializing sort by positional keys."""

    def __init__(
        self,
        ctx: ExecContext,
        child: Operator,
        keys: list[tuple[int, bool]],
    ) -> None:
        super().__init__(ctx, child.schema)
        self.child = child
        self.keys = keys

    def rows(self, params: Sequence[object]) -> Iterator[tuple]:
        materialized = list(self.child.rows(params))
        yield from sort_rows(
            self.ctx, materialized, self.keys, len(self.schema)
        )

    def describe(self) -> str:
        keys = ", ".join(
            f"{pos}{' DESC' if desc else ''}" for pos, desc in self.keys
        )
        return f"Sort({keys})"

    def child_operators(self) -> list[Operator]:
        return [self.child]
