"""Join operators: block nested loop, index nested loop, hash, merge."""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.engine.exec.base import ExecContext, Operator
from repro.engine.exec.sort import sort_rows
from repro.engine.expr import Expr, OutputSchema, predicate_holds
from repro.engine.table import Table


def _joined_schema(left: Operator, right_schema: OutputSchema) -> OutputSchema:
    return left.schema.concat(right_schema)


class NestedLoopJoin(Operator):
    """Block nested-loop join with an arbitrary join predicate.

    The inner input is materialized; when it exceeds working memory the
    outer side is processed in blocks and the inner side re-scanned per
    block, as a real BNL would re-read the inner relation.
    """

    def __init__(
        self,
        ctx: ExecContext,
        left: Operator,
        right: Operator,
        condition: Expr | None,
        outer: bool = False,
    ) -> None:
        super().__init__(ctx, _joined_schema(left, right.schema))
        self.left = left
        self.right = right
        self.condition = condition
        self.outer = outer

    def rows(self, params: Sequence[object]) -> Iterator[tuple]:
        inner = list(self.right.rows(params))
        inner_bytes = len(inner) * self.ctx.row_bytes(len(self.right.schema))
        rescans_needed = inner_bytes > self.ctx.params.work_mem_bytes
        null_row = (None,) * len(self.right.schema)
        outer_count = 0
        for left_row in self.left.rows(params):
            outer_count += 1
            matched = False
            self.ctx.charge_comparisons(len(inner))
            for right_row in inner:
                combined = left_row + right_row
                if self.condition is None or predicate_holds(
                        self.condition, combined, params):
                    matched = True
                    self.ctx.charge_tuples(1)
                    yield combined
            if self.outer and not matched:
                self.ctx.charge_tuples(1)
                yield left_row + null_row
        if rescans_needed and outer_count:
            # Charge the re-reads a block-sized BNL would have done.
            block_rows = max(
                1,
                self.ctx.params.work_mem_bytes
                // self.ctx.row_bytes(len(self.left.schema)),
            )
            blocks = -(-outer_count // block_rows)
            self.ctx.charge_spill(inner_bytes * max(0, blocks - 1), "bnl")

    def describe(self) -> str:
        kind = "LeftOuterNLJoin" if self.outer else "NestedLoopJoin"
        return kind

    def child_operators(self) -> list[Operator]:
        return [self.left, self.right]


class IndexNestedLoopJoin(Operator):
    """For each outer row, probe an index on the inner base table.

    ``key_sources`` builds the probe key along the index's key-column
    prefix; each element is either ``("outer", position)`` — take the
    value from the outer row — or ``("const", expr)`` — a plan-time
    constant / parameter / correlated reference.  This lets the probe
    use composite indexes whose leading columns are bound by equality
    filters (e.g. SAP's MANDT-first primary keys).
    """

    def __init__(
        self,
        ctx: ExecContext,
        left: Operator,
        inner_table: Table,
        inner_alias: str | None,
        index_name: str,
        key_sources: list[tuple[str, object]],
        residual: Expr | None = None,
        inner_filter: Expr | None = None,
    ) -> None:
        from repro.engine.exec.scans import table_schema

        inner_schema = table_schema(inner_table, inner_alias)
        super().__init__(ctx, _joined_schema(left, inner_schema))
        self.left = left
        self.inner_table = inner_table
        self.index = inner_table.indexes[index_name.lower()]
        self.key_sources = key_sources
        self.residual = residual
        self.inner_filter = inner_filter

    def _probe_key(self, left_row: tuple,
                   params: Sequence[object]) -> tuple | None:
        key = []
        for kind, source in self.key_sources:
            if kind == "outer":
                value = left_row[source]
            else:
                value = source.eval((), params)
            if value is None:
                return None
            key.append(value)
        return tuple(key)

    def rows(self, params: Sequence[object]) -> Iterator[tuple]:
        for left_row in self.left.rows(params):
            key = self._probe_key(left_row, params)
            if key is None:
                continue
            if len(key) == len(self.index.column_names):
                rowids = self.index.search_eq(key)
            else:
                rowids = [r for _k, r in self.index.search_prefix(key)]
            for rowid in rowids:
                inner_row = self.inner_table.fetch_row(rowid, sequential=False)
                if self.inner_filter is not None and not predicate_holds(
                        self.inner_filter, inner_row, params):
                    continue
                combined = left_row + inner_row
                self.ctx.charge_tuples(1)
                if self.residual is None or predicate_holds(
                        self.residual, combined, params):
                    yield combined

    def describe(self) -> str:
        return (f"IndexNestedLoopJoin({self.inner_table.name} "
                f"via {self.index.name})")

    def child_operators(self) -> list[Operator]:
        return [self.left]


class HashJoin(Operator):
    """Equi-join; builds a hash table on the right input.

    When the build side exceeds working memory, a grace-hash spill of
    both inputs is charged (write + re-read), as in a classic hybrid
    hash join.
    """

    def __init__(
        self,
        ctx: ExecContext,
        left: Operator,
        right: Operator,
        left_key_positions: list[int],
        right_key_positions: list[int],
        residual: Expr | None = None,
        build_left: bool = False,
    ) -> None:
        super().__init__(ctx, _joined_schema(left, right.schema))
        self.left = left
        self.right = right
        self.left_key_positions = left_key_positions
        self.right_key_positions = right_key_positions
        self.residual = residual
        #: the optimizer sets this when the left input is the smaller
        #: one; output column order is unaffected
        self.build_left = build_left

    def rows(self, params: Sequence[object]) -> Iterator[tuple]:
        if self.build_left:
            build_op, probe_op = self.left, self.right
            build_keys, probe_keys = (self.left_key_positions,
                                      self.right_key_positions)
        else:
            build_op, probe_op = self.right, self.left
            build_keys, probe_keys = (self.right_key_positions,
                                      self.left_key_positions)
        buckets: dict[tuple, list[tuple]] = {}
        build_count = 0
        for row in build_op.rows(params):
            key = tuple(row[pos] for pos in build_keys)
            if any(v is None for v in key):
                continue
            buckets.setdefault(key, []).append(row)
            build_count += 1
        self.ctx.charge_tuples(build_count)
        build_bytes = build_count * self.ctx.row_bytes(len(build_op.schema))
        probe_bytes = 0
        spilling = build_bytes > self.ctx.params.work_mem_bytes
        if spilling:
            self.ctx.charge_spill(build_bytes, "hash-build")
        for probe_row in probe_op.rows(params):
            probe_bytes += self.ctx.row_bytes(len(probe_op.schema))
            key = tuple(probe_row[pos] for pos in probe_keys)
            if any(v is None for v in key):
                continue
            self.ctx.charge_tuples(1)
            for build_row in buckets.get(key, ()):
                if self.build_left:
                    combined = build_row + probe_row
                else:
                    combined = probe_row + build_row
                if self.residual is None or predicate_holds(
                        self.residual, combined, params):
                    self.ctx.charge_tuples(1)
                    yield combined
        if spilling:
            self.ctx.charge_spill(probe_bytes, "hash-probe")

    def describe(self) -> str:
        side = "build=left" if self.build_left else "build=right"
        return f"HashJoin({side})"

    def child_operators(self) -> list[Operator]:
        return [self.left, self.right]


class MergeJoin(Operator):
    """Sort-merge equi-join (single-key); sorts both inputs first."""

    def __init__(
        self,
        ctx: ExecContext,
        left: Operator,
        right: Operator,
        left_key: int,
        right_key: int,
        residual: Expr | None = None,
    ) -> None:
        super().__init__(ctx, _joined_schema(left, right.schema))
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.residual = residual

    def rows(self, params: Sequence[object]) -> Iterator[tuple]:
        left_rows = sort_rows(
            self.ctx, list(self.left.rows(params)),
            [(self.left_key, False)], len(self.left.schema),
        )
        right_rows = sort_rows(
            self.ctx, list(self.right.rows(params)),
            [(self.right_key, False)], len(self.right.schema),
        )
        i = j = 0
        while i < len(left_rows) and j < len(right_rows):
            lval = left_rows[i][self.left_key]
            rval = right_rows[j][self.right_key]
            if lval is None:
                i += 1
                continue
            if rval is None:
                j += 1
                continue
            self.ctx.charge_comparisons(1)
            if lval < rval:
                i += 1
            elif lval > rval:
                j += 1
            else:
                # Emit the cross product of the equal runs.
                j_end = j
                while (j_end < len(right_rows)
                       and right_rows[j_end][self.right_key] == lval):
                    j_end += 1
                i_run = i
                while (i_run < len(left_rows)
                       and left_rows[i_run][self.left_key] == lval):
                    for jj in range(j, j_end):
                        combined = left_rows[i_run] + right_rows[jj]
                        if self.residual is None or predicate_holds(
                                self.residual, combined, params):
                            self.ctx.charge_tuples(1)
                            yield combined
                    i_run += 1
                i = i_run
                j = j_end

    def describe(self) -> str:
        return "MergeJoin"

    def child_operators(self) -> list[Operator]:
        return [self.left, self.right]
