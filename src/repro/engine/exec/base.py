"""Operator base class and execution context."""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.engine.buffer import BufferPool
from repro.engine.expr import OutputSchema
from repro.sim.clock import SimulatedClock
from repro.sim.metrics import MetricsCollector
from repro.sim.params import SimParams

#: rough in-memory width used for spill decisions on derived rows
ESTIMATED_COLUMN_BYTES = 16


class ExecContext:
    """Shared execution services: clock, metrics, cost constants, buffer."""

    def __init__(
        self,
        clock: SimulatedClock,
        metrics: MetricsCollector,
        params: SimParams,
        buffer_pool: BufferPool,
    ) -> None:
        self.clock = clock
        self.metrics = metrics
        self.params = params
        self.buffer_pool = buffer_pool
        #: the owning Database's tracer, installed post-construction so
        #: parallel fragments can record lane spans; None outside a
        #: Database (unit tests build bare contexts)
        self.tracer = None
        self._spill_counter = 0

    def charge_tuples(self, count: int) -> None:
        if count:
            self.clock.charge(self.params.tuple_cpu_s * count)
            self.metrics.count("exec.tuples", count)

    def charge_comparisons(self, count: float) -> None:
        if count:
            self.clock.charge(self.params.sort_cmp_s * count)

    def spill_file_name(self, label: str) -> str:
        """Fresh scratch-file name for external sorts / grace hash."""
        self._spill_counter += 1
        return f"tmp:{label}:{self._spill_counter}"

    def charge_spill(self, byte_count: int, label: str) -> None:
        """Charge writing + re-reading ``byte_count`` bytes of scratch."""
        pages = self.params.pages_for_bytes(byte_count)
        file_name = self.spill_file_name(label)
        for page_no in range(pages):
            self.buffer_pool.write(file_name, page_no, fresh=True)
        for page_no in range(pages):
            self.buffer_pool.access(file_name, page_no, sequential=True)
        self.metrics.count("exec.spill_pages", pages * 2)

    def row_bytes(self, width: int) -> int:
        return width * ESTIMATED_COLUMN_BYTES


class Operator:
    """Base physical operator.

    ``schema`` names the output columns; ``rows(params)`` yields output
    tuples.  ``estimated_rows`` is filled by the planner for costing
    and for explain output.
    """

    def __init__(self, ctx: ExecContext, schema: OutputSchema) -> None:
        self.ctx = ctx
        self.schema = schema
        self.estimated_rows: float = 0.0

    def rows(self, params: Sequence[object]) -> Iterator[tuple]:
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}{self.describe()}"]
        for child in self.child_operators():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return type(self).__name__

    def child_operators(self) -> list["Operator"]:
        return []
