"""EXPLAIN ANALYZE-style per-operator execution profiling.

``attach_profile`` instruments a physical operator tree in place: each
operator's ``rows()`` is shadowed by a wrapper that accounts, per
``next()`` pull, the inclusive simulated seconds, rows produced, and
pages read (from the disk counters).  Parent measurements naturally
include child work — exclusive time falls out as inclusive minus the
children's inclusive.

The profile accumulates across executions of the same plan, which is
exactly what a cursor-cached prepared statement needs: a nested SELECT
loop re-executes one plan thousands of times, and the aggregate
profile shows the total cost of each operator over the whole loop.

The wrapper only *reads* the clock and the metrics — it never charges
— so profiling changes simulated durations by zero ticks.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.engine.exec.base import Operator
from repro.sim.clock import SimulatedClock
from repro.sim.metrics import MetricsCollector

_PAGE_COUNTERS = ("disk.seq_reads", "disk.random_reads")


class OperatorProfile:
    """Accumulated execution statistics for one plan operator."""

    __slots__ = ("label", "depth", "loops", "rows_out", "pages_read",
                 "inclusive_s", "children")

    def __init__(self, label: str, depth: int) -> None:
        self.label = label
        self.depth = depth
        #: times the operator was opened (executions of the plan, or
        #: rescans when a parent re-opens its input)
        self.loops = 0
        self.rows_out = 0
        #: pages read while this operator (incl. children) was pulling
        self.pages_read = 0.0
        #: simulated seconds spent inside this operator incl. children
        self.inclusive_s = 0.0
        self.children: list[OperatorProfile] = []

    @property
    def rows_in(self) -> int:
        """Rows delivered by the child operators (0 for leaf scans)."""
        return sum(child.rows_out for child in self.children)

    @property
    def exclusive_s(self) -> float:
        return self.inclusive_s - sum(c.inclusive_s for c in self.children)

    @property
    def exclusive_pages(self) -> float:
        return self.pages_read - sum(c.pages_read for c in self.children)

    def walk(self) -> Iterator["OperatorProfile"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        return {
            "operator": self.label,
            "loops": self.loops,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "pages_read": self.pages_read,
            "inclusive_s": self.inclusive_s,
            "exclusive_s": self.exclusive_s,
            "children": [child.to_dict() for child in self.children],
        }

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [
            f"{pad}{self.label}  loops={self.loops} rows={self.rows_out} "
            f"pages={self.pages_read:g} incl={self.inclusive_s:.6f}s "
            f"excl={self.exclusive_s:.6f}s"
        ]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


def _pages(metrics: MetricsCollector) -> float:
    return sum(metrics.get(name) for name in _PAGE_COUNTERS)


def attach_profile(root: Operator, clock: SimulatedClock,
                   metrics: MetricsCollector) -> OperatorProfile:
    """Instrument ``root`` (idempotently) and return its profile tree."""
    existing = getattr(root, "_profile", None)
    if existing is not None:
        return existing

    def wrap(op: Operator, depth: int) -> OperatorProfile:
        profile = OperatorProfile(op.describe(), depth)
        original_rows = op.rows

        def rows(params: Sequence[object],
                 _orig=original_rows, _prof=profile) -> Iterator[tuple]:
            _prof.loops += 1
            source = _orig(params)
            while True:
                t0 = clock.now
                p0 = _pages(metrics)
                try:
                    row = next(source)
                except StopIteration:
                    _prof.inclusive_s += clock.now - t0
                    _prof.pages_read += _pages(metrics) - p0
                    return
                except BaseException:
                    # Deadline/timeout fired mid-pull: keep the
                    # partial charge visible in the profile.
                    _prof.inclusive_s += clock.now - t0
                    _prof.pages_read += _pages(metrics) - p0
                    raise
                _prof.inclusive_s += clock.now - t0
                _prof.pages_read += _pages(metrics) - p0
                _prof.rows_out += 1
                yield row

        op.rows = rows  # type: ignore[method-assign]
        op._profile = profile  # type: ignore[attr-defined]
        for child in op.child_operators():
            profile.children.append(wrap(child, depth + 1))
        return profile

    return wrap(root, 0)


def detach_profile(root: Operator) -> None:
    """Remove instrumentation installed by :func:`attach_profile`."""
    def unwrap(op: Operator) -> None:
        if getattr(op, "_profile", None) is not None:
            del op.rows  # restore the class-level method
            del op._profile
        for child in op.child_operators():
            unwrap(child)

    unwrap(root)
