"""Parallel execution operators: partition scans, exchanges, fragments.

A parallel plan contains *fragments*: subtrees executed by N worker
lanes over partitioned inputs, stitched back into the serial plan by an
exchange.  The operators here are:

* :class:`PartitionScan` — scans one partition of a
  :class:`~repro.engine.parallel.partition.PartitionedHeap` through the
  buffer pool under the partition's virtual file name;
* :class:`Gather` — the exchange that runs one operator tree per lane
  (each under its own :class:`~repro.sim.clock.LaneSink`) and merges
  their outputs at the coordinator, advancing the global clock by the
  slowest lane plus coordination overhead;
* :class:`PartialAggregate` / :class:`FinalAggregate` — two-phase
  aggregation: lanes fold their partition into per-group accumulator
  states, the coordinator merges states and emits final values;
* :class:`Repartition` — hash-routing of keyed rows to lanes (the
  shuffle used by the repartition join strategy);
* :class:`ParallelHashJoin` — partitioned hash join; the build side is
  executed serially once, then either **broadcast** (every lane builds
  the full table and probes its own partition) or **repartitioned**
  (build and probe rows shuffled by join-key hash; each lane joins one
  hash bucket, with a barrier between shuffle and probe phases).

Every lane's operator tree is a distinct object tree, so EXPLAIN
ANALYZE profiling attaches per lane and reports per-lane rows/pages.
Lane spans are recorded as ``parallel=True`` siblings under one
``exec.fragment`` span; because lane time is lane-local, the spans come
out as overlapping concurrent windows whose max — not sum — equals the
fragment's elapsed time.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.engine.exec.aggregate import _COUNT_STAR, _AggState
from repro.engine.exec.base import ExecContext, Operator
from repro.engine.expr import AggCall, Expr, OutputSchema, predicate_holds
from repro.engine.parallel.lanes import LaneSet
from repro.engine.parallel.partition import (
    PartitionManager,
    PartitionSpec,
    stable_hash,
)
from repro.engine.table import Table
from repro.trace.tracer import NOOP_SPAN


def _span(ctx: ExecContext, name: str, **attrs: object):
    """A tracer span, or the no-op span outside a Database context."""
    tracer = ctx.tracer
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def key_hash(key: tuple, seed: int = 0) -> int:
    """Deterministic hash of a multi-column key (CRC chain)."""
    h = seed
    for value in key:
        h = stable_hash(value, h)
    return h


class PartitionScan(Operator):
    """Scan one partition of a table, with an optional pushed filter.

    The partition overlay is resolved at *execution* time through the
    :class:`PartitionManager`, so a plan cached across DML (the cursor
    cache) always scans a current snapshot.  Page reads charge the
    buffer pool under the partition's virtual file name; rows deleted
    since the snapshot resolve to tombstones and are skipped without
    shifting any sibling partition's rowids or page counts.
    """

    def __init__(
        self,
        ctx: ExecContext,
        manager: PartitionManager,
        table: Table,
        spec: PartitionSpec,
        lane_index: int,
        alias: str | None = None,
        predicate: Expr | None = None,
    ) -> None:
        from repro.engine.exec.scans import table_schema

        super().__init__(ctx, table_schema(table, alias))
        self.manager = manager
        self.table = table
        self.spec = spec
        self.lane_index = lane_index
        self.predicate = predicate

    def rows(self, params: Sequence[object]) -> Iterator[tuple]:
        partition = self.manager.get(self.table, self.spec) \
            .partitions[self.lane_index]
        heap = self.table.heap
        buffer_pool = self.ctx.buffer_pool
        metrics = self.ctx.metrics
        counter = f"table.{self.table.name}.tuples_scanned"
        predicate = self.predicate
        last_page = -1
        for local_slot, rowid in enumerate(partition.rowids):
            page = partition.page_of(local_slot)
            if page != last_page:
                last_page = page
                buffer_pool.access(partition.file_name, page, sequential=True)
            row = heap.get(rowid)
            if row is None:
                continue  # tombstoned since the partition snapshot
            metrics.count(counter)
            self.ctx.charge_tuples(1)
            if predicate is None or predicate_holds(predicate, row, params):
                yield row

    def describe(self) -> str:
        filt = " (filtered)" if self.predicate is not None else ""
        return (f"PartitionScan({self.table.name} "
                f"p{self.lane_index}/{self.spec.degree}{filt})")


class Gather(Operator):
    """Exchange: execute one operator tree per lane, merge at the top.

    Lanes run under charge redirection; the global clock advances by
    ``max(lane seconds) + coordination overhead`` at the barrier.  Each
    gathered row pays an exchange shipping cost inside its lane.
    """

    def __init__(self, ctx: ExecContext, lane_ops: list[Operator],
                 label: str = "Gather") -> None:
        super().__init__(ctx, lane_ops[0].schema)
        self.lane_ops = lane_ops
        self.label = label

    @property
    def degree(self) -> int:
        return len(self.lane_ops)

    def rows(self, params: Sequence[object]) -> Iterator[tuple]:
        ctx = self.ctx
        if ctx.clock.redirected:
            # Already inside a lane (defensive: the planner never nests
            # fragments): run the lane trees inline, charges flow into
            # the enclosing lane.
            for op in self.lane_ops:
                yield from op.rows(params)
            return
        clock = ctx.clock
        ship_s = ctx.params.parallel_ship_tuple_s
        lanes = LaneSet(clock, self.degree)
        outputs: list[list[tuple]] = []
        with _span(ctx, "exec.fragment", operator=self.label,
                   degree=self.degree) as fragment:
            for index, op in enumerate(self.lane_ops):
                def work(op: Operator = op,
                         index: int = index) -> list[tuple]:
                    with _span(ctx, "exec.lane", lane=index,
                               parallel=True) as lane_span:
                        rows = list(op.rows(params))
                        clock.charge(len(rows) * ship_s)
                        lane_span.set(rows=len(rows))
                    return rows
                outputs.append(lanes.run(index, work))
            fragment.set(lane_seconds=lanes.lane_seconds(),
                         skew=lanes.skew(),
                         rows=sum(len(rows) for rows in outputs))
            lanes.barrier()
            clock.charge(ctx.params.parallel_fragment_overhead_s
                         + self.degree * ctx.params.parallel_lane_start_s)
        for rows in outputs:
            yield from rows

    def describe(self) -> str:
        return f"{self.label}(degree={self.degree})"

    def child_operators(self) -> list[Operator]:
        return list(self.lane_ops)


class PartialAggregate(Operator):
    """Lane-local aggregation emitting mergeable accumulator states.

    Output layout: group values first, then one state tuple
    ``(count, total, minimum, maximum)`` per aggregate call.  DISTINCT
    aggregates are not mergeable this way; the planner keeps them
    serial.  With no group expressions each lane emits exactly one
    state row, even over empty input, so the final phase always sees
    ``degree`` partials for a global aggregate.
    """

    def __init__(
        self,
        ctx: ExecContext,
        child: Operator,
        group_exprs: list[Expr],
        agg_calls: list[AggCall],
    ) -> None:
        entries: list[tuple[str | None, str]] = []
        entries.extend((None, f"_g{i}") for i in range(len(group_exprs)))
        entries.extend((None, f"_s{i}") for i in range(len(agg_calls)))
        super().__init__(ctx, OutputSchema(entries))
        assert not any(call.distinct for call in agg_calls), \
            "DISTINCT aggregates cannot be partially aggregated"
        self.child = child
        self.group_exprs = group_exprs
        self.agg_calls = agg_calls

    def rows(self, params: Sequence[object]) -> Iterator[tuple]:
        groups: dict[tuple, list[_AggState]] = {}
        order: list[tuple] = []
        for row in self.child.rows(params):
            self.ctx.charge_tuples(1)
            key = tuple(expr.eval(row, params) for expr in self.group_exprs)
            states = groups.get(key)
            if states is None:
                states = [
                    _AggState(call.func, False) for call in self.agg_calls
                ]
                groups[key] = states
                order.append(key)
            for call, state in zip(self.agg_calls, states):
                if call.arg is None:
                    state.add(_COUNT_STAR)
                else:
                    state.add(call.arg.eval(row, params))
        if not self.group_exprs and not groups:
            states = [_AggState(call.func, False) for call in self.agg_calls]
            groups[()] = states
            order.append(())
        for key in order:
            self.ctx.charge_tuples(1)
            yield key + tuple(
                (s.count, s.total, s.minimum, s.maximum)
                for s in groups[key]
            )

    def describe(self) -> str:
        return (f"PartialAggregate(groups={len(self.group_exprs)}, "
                f"aggs={len(self.agg_calls)})")

    def child_operators(self) -> list[Operator]:
        return [self.child]


class FinalAggregate(Operator):
    """Merge partial aggregation states into final values.

    Consumes the gathered partial rows (group values + state tuples)
    and emits the same layout as :class:`GroupAggregate`: group values
    first, aggregate results after.
    """

    def __init__(
        self,
        ctx: ExecContext,
        child: Operator,
        group_count: int,
        agg_calls: list[AggCall],
    ) -> None:
        entries: list[tuple[str | None, str]] = []
        entries.extend((None, f"_g{i}") for i in range(group_count))
        entries.extend((None, f"_a{i}") for i in range(len(agg_calls)))
        super().__init__(ctx, OutputSchema(entries))
        self.child = child
        self.group_count = group_count
        self.agg_calls = agg_calls

    def rows(self, params: Sequence[object]) -> Iterator[tuple]:
        merged: dict[tuple, list[_AggState]] = {}
        order: list[tuple] = []
        for row in self.child.rows(params):
            self.ctx.charge_tuples(1)
            key = row[:self.group_count]
            states = merged.get(key)
            if states is None:
                states = [
                    _AggState(call.func, False) for call in self.agg_calls
                ]
                merged[key] = states
                order.append(key)
            for state, packed in zip(states, row[self.group_count:]):
                count, total, minimum, maximum = packed
                state.count += count
                state.total += total
                if minimum is not None and (state.minimum is None
                                            or minimum < state.minimum):
                    state.minimum = minimum
                if maximum is not None and (state.maximum is None
                                            or maximum > state.maximum):
                    state.maximum = maximum
        if not self.group_count and not merged:
            states = [_AggState(call.func, False) for call in self.agg_calls]
            yield tuple(state.result() for state in states)
            return
        for key in order:
            self.ctx.charge_tuples(1)
            yield key + tuple(state.result() for state in merged[key])

    def describe(self) -> str:
        return (f"FinalAggregate(groups={self.group_count}, "
                f"aggs={len(self.agg_calls)})")

    def child_operators(self) -> list[Operator]:
        return [self.child]


class Repartition:
    """Hash-route keyed rows into per-lane buckets (the shuffle).

    Charges one exchange ship per routed row on whatever clock context
    is active — a lane's sink during a parallel shuffle phase, the
    global clock when the coordinator splits the build side.
    """

    def __init__(self, ctx: ExecContext, degree: int, seed: int = 0) -> None:
        self.ctx = ctx
        self.degree = degree
        self.seed = seed

    def route(
        self, keyed_rows: Iterator[tuple[tuple, tuple]]
    ) -> list[list[tuple[tuple, tuple]]]:
        buckets: list[list[tuple[tuple, tuple]]] = [
            [] for _ in range(self.degree)
        ]
        count = 0
        for key, row in keyed_rows:
            buckets[key_hash(key, self.seed) % self.degree].append((key, row))
            count += 1
        self.ctx.clock.charge(
            count * (self.ctx.params.tuple_cpu_s
                     + self.ctx.params.parallel_ship_tuple_s))
        self.ctx.metrics.count("parallel.repartitioned_rows", count)
        return buckets


class ParallelHashJoin(Operator):
    """Partitioned hash join fragment (broadcast or repartition).

    The build side runs serially at the coordinator (it is the smaller
    input by the optimizer's choice).  Probe lanes then join in
    parallel:

    * ``broadcast`` — every lane receives the whole build table and
      probes its own partition; chosen when the build side is small.
    * ``repartition`` — build rows are hash-split by join key at the
      coordinator; each lane shuffles its probe partition by the same
      hash (phase 1), then builds and probes one bucket (phase 2),
      with a lane barrier between the phases.
    """

    def __init__(
        self,
        ctx: ExecContext,
        build_op: Operator,
        probe_lane_ops: list[Operator],
        build_key_positions: list[int],
        probe_key_positions: list[int],
        probe_is_left: bool,
        strategy: str,
        residual: Expr | None = None,
        seed: int = 0,
    ) -> None:
        probe_schema = probe_lane_ops[0].schema
        if probe_is_left:
            schema = probe_schema.concat(build_op.schema)
        else:
            schema = build_op.schema.concat(probe_schema)
        super().__init__(ctx, schema)
        assert strategy in ("broadcast", "repartition")
        self.build_op = build_op
        self.probe_lane_ops = probe_lane_ops
        self.build_key_positions = build_key_positions
        self.probe_key_positions = probe_key_positions
        self.probe_is_left = probe_is_left
        self.strategy = strategy
        self.residual = residual
        self.seed = seed

    @property
    def degree(self) -> int:
        return len(self.probe_lane_ops)

    # -- helpers ---------------------------------------------------------

    def _build_rows(self, params: Sequence[object]) \
            -> list[tuple[tuple, tuple]]:
        keyed = []
        for row in self.build_op.rows(params):
            key = tuple(row[pos] for pos in self.build_key_positions)
            if any(value is None for value in key):
                continue
            keyed.append((key, row))
        self.ctx.charge_tuples(len(keyed))
        return keyed

    def _probe_one(
        self,
        buckets: dict[tuple, list[tuple]],
        probe_rows: Iterator[tuple[tuple, tuple]],
        params: Sequence[object],
        out: list[tuple],
    ) -> None:
        for key, probe_row in probe_rows:
            self.ctx.charge_tuples(1)
            for build_row in buckets.get(key, ()):
                if self.probe_is_left:
                    combined = probe_row + build_row
                else:
                    combined = build_row + probe_row
                if self.residual is None or predicate_holds(
                        self.residual, combined, params):
                    self.ctx.charge_tuples(1)
                    out.append(combined)

    def _keyed_probe(self, op: Operator, params: Sequence[object]) \
            -> Iterator[tuple[tuple, tuple]]:
        for row in op.rows(params):
            key = tuple(row[pos] for pos in self.probe_key_positions)
            if any(value is None for value in key):
                continue
            yield key, row

    @staticmethod
    def _hash_table(keyed: list[tuple[tuple, tuple]]) \
            -> dict[tuple, list[tuple]]:
        table: dict[tuple, list[tuple]] = {}
        for key, row in keyed:
            table.setdefault(key, []).append(row)
        return table

    # -- execution -------------------------------------------------------

    def rows(self, params: Sequence[object]) -> Iterator[tuple]:
        ctx = self.ctx
        clock = ctx.clock
        p = ctx.params
        build_keyed = self._build_rows(params)
        if clock.redirected:
            # Defensive serial fallback (fragments never nest): probe
            # every partition against the full build table inline.
            table = self._hash_table(build_keyed)
            out: list[tuple] = []
            for op in self.probe_lane_ops:
                self._probe_one(table, self._keyed_probe(op, params),
                                params, out)
            yield from out
            return
        degree = self.degree
        lanes = LaneSet(clock, degree)
        outputs: list[list[tuple]] = [[] for _ in range(degree)]
        with _span(ctx, "exec.fragment", operator="ParallelHashJoin",
                   strategy=self.strategy, degree=degree) as fragment:
            if self.strategy == "broadcast":
                for index, probe in enumerate(self.probe_lane_ops):
                    def work(index: int = index,
                             probe: Operator = probe) -> None:
                        with _span(ctx, "exec.lane", lane=index,
                                   parallel=True) as lane_span:
                            # Receiving the broadcast copy + building.
                            clock.charge(len(build_keyed)
                                         * (p.tuple_cpu_s
                                            + p.parallel_ship_tuple_s))
                            table = self._hash_table(build_keyed)
                            self._probe_one(
                                table, self._keyed_probe(probe, params),
                                params, outputs[index])
                            lane_span.set(rows=len(outputs[index]))
                    lanes.run(index, work)
                lanes.barrier()
            else:
                build_shards = Repartition(ctx, degree, self.seed) \
                    .route(iter(build_keyed))
                shuffled: list[list[list[tuple[tuple, tuple]]]] = [
                    [[] for _ in range(degree)] for _ in range(degree)
                ]

                def shuffle(index: int, probe: Operator) -> None:
                    with _span(ctx, "exec.lane", lane=index, phase=1,
                               parallel=True):
                        shuffled[index][:] = Repartition(
                            ctx, degree, self.seed
                        ).route(self._keyed_probe(probe, params))

                def probe_bucket(index: int) -> None:
                    with _span(ctx, "exec.lane", lane=index, phase=2,
                               parallel=True) as lane_span:
                        table = self._hash_table(build_shards[index])
                        clock.charge(len(build_shards[index])
                                     * p.tuple_cpu_s)
                        for source in range(degree):
                            self._probe_one(
                                table, iter(shuffled[source][index]),
                                params, outputs[index])
                        lane_span.set(rows=len(outputs[index]))

                for index, probe in enumerate(self.probe_lane_ops):
                    lanes.run(index, lambda i=index, op=probe: shuffle(i, op))
                lanes.barrier()
                for index in range(degree):
                    lanes.run(index, lambda i=index: probe_bucket(i))
                lanes.barrier()
            clock.charge(p.parallel_fragment_overhead_s
                         + degree * p.parallel_lane_start_s)
            total = sum(len(rows) for rows in outputs)
            clock.charge(total * p.parallel_ship_tuple_s)
            fragment.set(lane_seconds=lanes.lane_seconds(),
                         skew=lanes.skew(), rows=total,
                         build_rows=len(build_keyed))
        for rows in outputs:
            yield from rows

    def describe(self) -> str:
        return f"ParallelHashJoin({self.strategy}, degree={self.degree})"

    def child_operators(self) -> list[Operator]:
        return [self.build_op] + list(self.probe_lane_ops)
