"""Hash aggregation operator.

The engine pipelines grouping after sorting or hashes directly — there
is no intermediate materialization to disk, which is the advantage the
paper measures against the SAP application server's two-phase
EXTRACT/SORT grouping (Section 4.2, Table 7).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.engine.errors import ExecutionError
from repro.engine.exec.base import ExecContext, Operator
from repro.engine.expr import AggCall, Expr, OutputSchema


class _AggState:
    """Accumulator for one aggregate in one group."""

    __slots__ = ("func", "distinct", "count", "total", "minimum", "maximum",
                 "seen")

    def __init__(self, func: str, distinct: bool) -> None:
        self.func = func
        self.distinct = distinct
        self.count = 0
        self.total = 0.0
        self.minimum: object = None
        self.maximum: object = None
        self.seen: set | None = set() if distinct else None

    def add(self, value: object) -> None:
        if self.func == "COUNT" and value is _COUNT_STAR:
            self.count += 1
            return
        if value is None:
            return
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if self.func in ("SUM", "AVG"):
            self.total += value
        elif self.func == "MIN":
            if self.minimum is None or value < self.minimum:
                self.minimum = value
        elif self.func == "MAX":
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    def result(self) -> object:
        if self.func == "COUNT":
            return self.count
        if self.count == 0:
            return None
        if self.func == "SUM":
            return self.total
        if self.func == "AVG":
            return self.total / self.count
        if self.func == "MIN":
            return self.minimum
        if self.func == "MAX":
            return self.maximum
        raise ExecutionError(f"unknown aggregate {self.func}")


class _CountStar:
    pass


_COUNT_STAR = _CountStar()


class GroupAggregate(Operator):
    """Group by ``group_exprs`` and compute ``agg_calls``.

    Output row layout: group values first, aggregate results after, in
    declaration order.  With no group expressions the operator emits
    exactly one row (global aggregation), even over empty input.
    """

    def __init__(
        self,
        ctx: ExecContext,
        child: Operator,
        group_exprs: list[Expr],
        agg_calls: list[AggCall],
    ) -> None:
        entries: list[tuple[str | None, str]] = []
        entries.extend((None, f"_g{i}") for i in range(len(group_exprs)))
        entries.extend((None, f"_a{i}") for i in range(len(agg_calls)))
        super().__init__(ctx, OutputSchema(entries))
        self.child = child
        self.group_exprs = group_exprs
        self.agg_calls = agg_calls

    def rows(self, params: Sequence[object]) -> Iterator[tuple]:
        groups: dict[tuple, list[_AggState]] = {}
        order: list[tuple] = []
        for row in self.child.rows(params):
            self.ctx.charge_tuples(1)
            key = tuple(expr.eval(row, params) for expr in self.group_exprs)
            states = groups.get(key)
            if states is None:
                states = [
                    _AggState(call.func, call.distinct)
                    for call in self.agg_calls
                ]
                groups[key] = states
                order.append(key)
            for call, state in zip(self.agg_calls, states):
                if call.arg is None:
                    state.add(_COUNT_STAR)
                else:
                    state.add(call.arg.eval(row, params))
        if not self.group_exprs and not groups:
            # Global aggregate over empty input still yields one row.
            states = [
                _AggState(call.func, call.distinct) for call in self.agg_calls
            ]
            yield tuple(state.result() for state in states)
            return
        for key in order:
            states = groups[key]
            self.ctx.charge_tuples(1)
            yield key + tuple(state.result() for state in states)

    def describe(self) -> str:
        aggs = ", ".join(
            f"{c.func}({'*' if c.arg is None else '…'})"
            for c in self.agg_calls
        )
        return f"GroupAggregate(groups={len(self.group_exprs)}, aggs=[{aggs}])"

    def child_operators(self) -> list[Operator]:
        return [self.child]
