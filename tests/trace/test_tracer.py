"""Tracer core: nesting, clock readings, disabled mode, metrics capture."""

from repro.sim.clock import SimulatedClock
from repro.sim.metrics import MetricsCollector
from repro.trace import NOOP_SPAN, Tracer


def make_tracer(enabled=True, **kwargs):
    clock = SimulatedClock()
    metrics = MetricsCollector()
    return Tracer(clock, metrics, enabled=enabled, **kwargs), clock, metrics


class TestNesting:
    def test_parent_child_tree_and_ordering(self):
        tracer, clock, _ = make_tracer()
        with tracer.span("outer"):
            clock.charge(1.0)
            with tracer.span("first"):
                clock.charge(2.0)
            with tracer.span("second"):
                clock.charge(3.0)
            clock.charge(0.5)
        assert [s.name for s in tracer.iter_spans()] == \
            ["outer", "first", "second"]
        outer, = tracer.roots
        assert [c.name for c in outer.children] == ["first", "second"]
        assert outer.elapsed_s == 6.5
        assert outer.children[0].elapsed_s == 2.0
        assert outer.children[1].elapsed_s == 3.0
        # exclusive = inclusive minus children
        assert outer.self_s == 1.5

    def test_start_end_are_clock_readings(self):
        tracer, clock, _ = make_tracer()
        clock.charge(10.0)
        with tracer.span("s"):
            clock.charge(4.0)
        span, = tracer.roots
        assert span.start_s == 10.0 and span.end_s == 14.0

    def test_sibling_roots(self):
        tracer, clock, _ = make_tracer()
        with tracer.span("a"):
            clock.charge(1.0)
        with tracer.span("b"):
            clock.charge(1.0)
        assert [s.name for s in tracer.roots] == ["a", "b"]

    def test_current_is_innermost(self):
        tracer, _, _ = make_tracer()
        assert tracer.current() is NOOP_SPAN
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is NOOP_SPAN

    def test_two_tracers_do_not_interleave(self):
        t1, clock1, _ = make_tracer()
        t2, _, _ = make_tracer()
        with t1.span("one"):
            with t2.span("two"):
                clock1.charge(1.0)
        assert [s.name for s in t1.iter_spans()] == ["one"]
        assert [s.name for s in t2.iter_spans()] == ["two"]

    def test_span_closed_on_exception(self):
        tracer, clock, _ = make_tracer()
        try:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    clock.charge(1.0)
                    raise ValueError("boom")
        except ValueError:
            pass
        outer, = tracer.roots
        assert outer.end_s is not None
        assert outer.children[0].end_s is not None
        assert tracer.current() is NOOP_SPAN


class TestDisabledMode:
    def test_disabled_returns_shared_noop(self):
        tracer, _, _ = make_tracer(enabled=False)
        span = tracer.span("anything", attr=1)
        assert span is NOOP_SPAN
        assert tracer.span("other") is span  # no allocation per call
        with span as entered:
            entered.set(x=1).add("y", 2)
        assert tracer.roots == [] and tracer.span_count == 0

    def test_enable_disable_roundtrip(self):
        tracer, clock, _ = make_tracer(enabled=False)
        tracer.enable()
        with tracer.span("s"):
            clock.charge(1.0)
        tracer.disable()
        assert tracer.span("t") is NOOP_SPAN
        assert [s.name for s in tracer.roots] == ["s"]

    def test_max_spans_drops_and_counts(self):
        tracer, _, _ = make_tracer(max_spans=2)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert tracer.span("c") is NOOP_SPAN
        assert tracer.dropped == 1 and tracer.span_count == 2


class TestAnnotations:
    def test_set_and_add(self):
        tracer, _, _ = make_tracer()
        with tracer.span("s", fixed=1) as span:
            span.set(rows=10)
            span.add("retries")
            span.add("retries", 2)
        assert span.attrs == {"fixed": 1, "rows": 10, "retries": 3}

    def test_capture_metrics_delta(self):
        tracer, _, metrics = make_tracer()
        metrics.count("pages", 100)
        with tracer.span("q", capture_metrics=True):
            metrics.count("pages", 7)
            metrics.count("rows", 3)
        span, = tracer.roots
        assert span.counters == {"pages": 7, "rows": 3}

    def test_no_capture_means_no_counters(self):
        tracer, _, metrics = make_tracer()
        with tracer.span("q"):
            metrics.count("pages", 7)
        span, = tracer.roots
        assert span.counters == {}

    def test_find_and_clear(self):
        tracer, _, _ = make_tracer()
        with tracer.span("x"):
            with tracer.span("y"):
                pass
        with tracer.span("y"):
            pass
        assert len(tracer.find("y")) == 2
        tracer.clear()
        assert tracer.roots == [] and tracer.span_count == 0
