"""TraceAnalyzer layer algebra and the JSON/Chrome exporters."""

import pytest

from repro.engine.exec.profile import OperatorProfile
from repro.sim.clock import LaneSink, SimulatedClock
from repro.sim.metrics import MetricsCollector
from repro.trace import TraceAnalyzer, Tracer, to_chrome, to_json


def traced_query(with_profile=False):
    """A hand-built power.query: ABAP work, one DBIF call wrapping
    engine work, and one direct engine call (the rdbms idiom)."""
    clock = SimulatedClock()
    metrics = MetricsCollector()
    tracer = Tracer(clock, metrics, enabled=True)
    profile = None
    if with_profile:
        profile = OperatorProfile("SeqScan(lineitem)", 0)
        profile.loops = 1
        profile.rows_out = 50
        profile.pages_read = 8.0
        profile.inclusive_s = 2.5
    with tracer.span("power.query", capture_metrics=True,
                     name="Q3", variant="open"):
        clock.charge(1.0)                      # app-server work
        with tracer.span("dbif.call", mode="param"):
            clock.charge(0.5)                  # shipping / latency
            with tracer.span("db.query") as dbspan:
                metrics.count("disk.time_s", 1.5)
                clock.charge(2.5)              # engine incl. disk
                if profile is not None:
                    dbspan.set(profile=profile)
            clock.charge(0.25)                 # more DBIF overhead
        with tracer.span("db.query"):          # direct (no DBIF)
            clock.charge(0.75)
        clock.charge(0.5)                      # app-server epilogue
        metrics.count("dbif.roundtrips", 3)
    return tracer


class TestLayerAlgebra:
    def test_breakdown_sums_exactly(self):
        analyzer = TraceAnalyzer(traced_query())
        b, = analyzer.query_breakdowns()
        assert b.name == "Q3" and b.variant == "open"
        assert b.total_s == pytest.approx(5.5)
        assert b.dbif_s == pytest.approx(0.75)     # 3.25 call - 2.5 engine
        assert b.engine_s == pytest.approx(3.25)   # 2.5 under dbif + 0.75
        assert b.app_s == pytest.approx(1.5)
        assert b.app_s + b.dbif_s + b.engine_s == pytest.approx(b.total_s)
        assert b.disk_s == pytest.approx(1.5)
        assert b.roundtrips == 3
        assert b.dbif_calls == 1

    def test_parallel_lane_siblings_fold_as_max(self):
        """Concurrent worker-lane spans contribute their slowest lane,
        not their sum — the layer identity must survive parallelism."""
        clock = SimulatedClock()
        metrics = MetricsCollector()
        tracer = Tracer(clock, metrics, enabled=True)
        lane_costs = ((0.2, 0.6), (0.1, 0.3))  # (dbif ship, engine) per lane
        with tracer.span("power.query", name="Q6", variant="rdbms"):
            clock.charge(1.0)                  # app-server prologue
            with tracer.span("exec.fragment", operator="Gather"):
                sinks = []
                for index, (ship, engine) in enumerate(lane_costs):
                    sink = LaneSink()
                    sinks.append(sink)
                    with clock.redirect(sink):
                        with tracer.span("exec.lane", lane=index,
                                         parallel=True):
                            with tracer.span("dbif.call"):
                                clock.charge(ship)
                                with tracer.span("db.query"):
                                    clock.charge(engine)
                clock.charge(max(s.seconds for s in sinks))  # barrier
            clock.charge(0.2)                  # app-server epilogue
        analyzer = TraceAnalyzer(tracer)
        b, = analyzer.query_breakdowns()
        assert b.total_s == pytest.approx(2.0)     # 1.0 + max(0.8) + 0.2
        assert b.engine_s == pytest.approx(0.6)    # slowest lane's engine
        assert b.dbif_s == pytest.approx(0.2)      # slowest lane's shipping
        assert b.dbif_calls == 2                   # discrete counts still add
        # The identity holds even though the lanes overlap on the time
        # axis; summing the lanes would have produced app + dbif +
        # engine = 2.9 against a 2.0 total.
        assert b.app_s + b.dbif_s + b.engine_s == pytest.approx(b.total_s)

    def test_sequential_phases_fold_per_phase(self):
        """Lane groups with distinct phase attrs (a barrier between
        them) contribute the sum of per-phase maxima."""
        clock = SimulatedClock()
        tracer = Tracer(clock, MetricsCollector(), enabled=True)
        with tracer.span("power.query", name="Q3", variant="rdbms"):
            with tracer.span("exec.fragment", operator="ParallelHashJoin"):
                for phase, costs in ((1, (0.4, 0.1)), (2, (0.1, 0.3))):
                    for index, cost in enumerate(costs):
                        with clock.redirect(LaneSink()):
                            with tracer.span("exec.lane", lane=index,
                                             phase=phase, parallel=True):
                                with tracer.span("db.query"):
                                    clock.charge(cost)
                    clock.charge(max(costs))   # per-phase barrier
        b, = TraceAnalyzer(tracer).query_breakdowns()
        assert b.total_s == pytest.approx(0.7)
        assert b.engine_s == pytest.approx(0.7)    # max(phase1) + max(phase2)
        assert b.app_s == pytest.approx(0.0)

    def test_summary_totals(self):
        summary = TraceAnalyzer(traced_query()).summary()
        assert len(summary["queries"]) == 1
        totals = summary["totals"]
        assert totals["total_s"] == pytest.approx(
            totals["app_server_s"] + totals["dbif_s"] + totals["engine_s"])

    def test_top_operators_dedupes_shared_profile(self):
        tracer = traced_query(with_profile=True)
        # attach the same profile object to a second db.query span, as
        # repeated executions of a cached plan do
        profile = tracer.find("db.query")[0].attrs["profile"]
        with tracer.span("db.query") as extra:
            extra.set(profile=profile)
        ops = TraceAnalyzer(tracer).top_operators(5)
        op, = ops
        assert op.label == "SeqScan(lineitem)"
        assert op.loops == 1 and op.rows_out == 50
        assert op.exclusive_s == pytest.approx(2.5)

    def test_render_text_has_layers_and_operators(self):
        text = TraceAnalyzer(traced_query(with_profile=True)) \
            .render_text(top=5, title="unit")
        assert "App-server s" in text and "DBIF s" in text
        assert "SeqScan(lineitem)" in text
        assert "Total" in text


class TestExporters:
    def test_json_document_shape(self):
        document = to_json(traced_query(with_profile=True),
                           meta={"variant": "open"})
        assert document["format"] == "repro-trace-v1"
        assert document["meta"] == {"variant": "open"}
        root, = document["spans"]
        assert root["name"] == "power.query"
        assert root["counters"]["dbif.roundtrips"] == 3
        names = {root["name"]}
        stack = list(root["children"])
        while stack:
            node = stack.pop()
            names.add(node["name"])
            stack.extend(node["children"])
        assert names == {"power.query", "dbif.call", "db.query"}
        # the profile serialised through its to_dict()
        dbif, = [c for c in root["children"] if c["name"] == "dbif.call"]
        prof = dbif["children"][0]["attrs"]["profile"]
        assert prof["operator"] == "SeqScan(lineitem)"
        assert prof["rows_out"] == 50

    def test_json_is_json_serialisable(self):
        import json

        text = json.dumps(to_json(traced_query(with_profile=True)))
        assert "SeqScan" in text

    def test_chrome_roundtrip_from_json(self):
        tracer = traced_query(with_profile=True)
        document = to_json(tracer)
        chrome = to_chrome(document, tid=7, thread_name="open")
        events = chrome["traceEvents"]
        meta_events = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert meta_events[0]["args"]["name"] == "open"
        assert len(spans) == sum(1 for _ in tracer.iter_spans())
        root = spans[0]
        assert root["name"] == "power.query"
        assert root["ts"] == 0.0
        assert root["dur"] == pytest.approx(5.5e6)  # seconds -> µs
        assert all(e["tid"] == 7 for e in spans)
        # profiles stay out of chrome args; scalars and counters go in
        assert all("profile" not in e["args"] for e in spans)
        assert root["args"]["counter:dbif.roundtrips"] == 3

    def test_chrome_accepts_tracer_directly(self):
        chrome = to_chrome(traced_query())
        assert any(e["name"] == "db.query" for e in chrome["traceEvents"])
