"""End-to-end: tracing the power test.

Two guarantees worth a slow test: the per-layer decomposition sums to
the measured total for every query, and enabling tracing changes the
simulated result by exactly zero ticks.
"""

import pytest

from repro.core.powertest import run_power_test
from repro.r3.appserver import R3Version
from repro.tpcd.dbgen import generate
from repro.trace import TraceAnalyzer

SF = 0.0005


@pytest.fixture(scope="module")
def tiny_data():
    return generate(SF)


@pytest.fixture(scope="module")
def traced_result(tiny_data):
    return run_power_test(SF, R3Version.V30, variants=("rdbms", "open"),
                          include_updates=False, data=tiny_data,
                          tracing=True)


class TestLayerSums:
    def test_layers_sum_to_total_per_query(self, traced_result):
        for variant in ("rdbms", "open"):
            analyzer = TraceAnalyzer(traced_result.traces[variant])
            breakdowns = analyzer.query_breakdowns()
            assert len(breakdowns) == 17
            for b in breakdowns:
                assert b.app_s + b.dbif_s + b.engine_s == \
                    pytest.approx(b.total_s, abs=1e-9), b.name
                assert b.total_s == \
                    pytest.approx(traced_result.times[variant][b.name])

    def test_open_sql_goes_through_dbif(self, traced_result):
        analyzer = TraceAnalyzer(traced_result.traces["open"])
        totals = analyzer._totals(analyzer.query_breakdowns())
        assert totals["dbif_s"] > 0
        assert totals["roundtrips"] > 17  # nested selects ship many calls
        assert totals["engine_s"] > 0
        assert 0 < totals["disk_s"] <= totals["total_s"]

    def test_rdbms_variant_has_no_dbif_layer(self, traced_result):
        analyzer = TraceAnalyzer(traced_result.traces["rdbms"])
        for b in analyzer.query_breakdowns():
            assert b.dbif_s == 0 and b.dbif_calls == 0
            assert b.engine_s > 0

    def test_operator_profiles_present(self, traced_result):
        for variant in ("rdbms", "open"):
            ops = TraceAnalyzer(traced_result.traces[variant]) \
                .top_operators(5)
            assert ops, variant
            assert all(op.exclusive_s >= 0 for op in ops)
            assert any(op.rows_out > 0 for op in ops)


class TestZeroOverhead:
    def test_tracing_changes_simulated_time_by_zero_ticks(
            self, tiny_data, traced_result):
        untraced = run_power_test(SF, R3Version.V30,
                                  variants=("rdbms", "open"),
                                  include_updates=False, data=tiny_data)
        assert untraced.traces == {}
        for variant in ("rdbms", "open"):
            assert untraced.times[variant] == \
                traced_result.times[variant]  # exact, not approx
