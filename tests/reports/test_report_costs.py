"""Cost-shape assertions on the report suites.

These check the *mechanisms* behind the paper's numbers: interface
crossings, cluster decodes, cursor caching, EXTRACT/SORT spills.
"""

import pytest

from repro.reports import common as cm
from repro.reports import native30, open22, open30
from tests.conftest import SF


class TestInterfaceCrossings:
    def test_native30_is_one_statement(self, r3_30):
        snap = r3_30.metrics.snapshot()
        native30.q6(r3_30)
        assert snap.get("dbif.roundtrips") == 1

    def test_open22_crosses_per_order(self, r3_22, tpcd_data):
        snap = r3_22.metrics.snapshot()
        open22.q6(r3_22)
        # at least one KONV cluster fetch per order with a qualifying
        # lineitem, plus the driving view query
        assert snap.get("dbif.roundtrips") > 100

    def test_open22_decodes_cluster(self, r3_22):
        snap = r3_22.metrics.snapshot()
        open22.q1(r3_22)
        assert snap.get("abap.rows_decoded") > 0

    def test_open30_probes_transparent_konv(self, r3_30):
        snap = r3_30.metrics.snapshot()
        open30.q1(r3_30)
        assert snap.get("abap.rows_decoded") == 0

    def test_cursor_cache_amortizes_nested_loops(self, r3_22):
        open22.q5(r3_22)
        snap = r3_22.metrics.snapshot()
        open22.q5(r3_22)
        delta = snap.delta()
        hits = delta.get("dbif.cursor_cache_hits", 0)
        misses = delta.get("dbif.cursor_cache_misses", 0)
        assert hits > 10 * max(misses, 1)


class TestGroupingCosts:
    def test_open_reports_sort_via_disk(self, r3_30):
        snap = r3_30.metrics.snapshot()
        open30.q1(r3_30)
        assert snap.get("abap.sort_spills") >= 1
        assert snap.get("abap.extracts") > 0

    def test_native30_groups_in_rdbms(self, r3_30):
        snap = r3_30.metrics.snapshot()
        native30.q1(r3_30)
        assert snap.get("abap.extracts") == 0

    def test_open_ships_rows_native_ships_groups(self, r3_30):
        snap = r3_30.metrics.snapshot()
        native30.q1(r3_30)
        native_shipped = snap.get("dbif.tuples_shipped")
        snap2 = r3_30.metrics.snapshot()
        open30.q1(r3_30)
        open_shipped = snap2.get("dbif.tuples_shipped")
        assert open_shipped > 100 * native_shipped


class TestSimulatedTimeShapes:
    def test_konv_lookup_memoizes_per_document(self, r3_22):
        lookup = cm.KonvLookup(r3_22)
        knumv = cm.KeyCodec.knumv(1)
        snap = r3_22.metrics.snapshot()
        lookup.conditions(knumv)
        lookup.conditions(knumv)
        assert snap.get("dbif.roundtrips") == 1

    def test_nation_helpers(self, r3_22):
        names = cm.nation_names(r3_22)
        assert names["007"] == "GERMANY"
        regions = cm.nations_in_region(r3_22, "EUROPE")
        assert "GERMANY" in regions.values()
        assert len(regions) == 5

    def test_region_lookup_missing(self, r3_22):
        assert cm.region_by_name(r3_22, "ATLANTIS") is None

    @pytest.mark.parametrize("number", [1, 3, 6])
    def test_open22_slower_than_native30(self, r3_22, r3_30, number):
        """2.2 Open SQL vs 3.0 Native SQL is the paper's biggest gap."""
        suite22 = open22.make_queries(SF)
        suite30 = native30.make_queries(SF)
        span = r3_22.measure()
        suite22[number](r3_22)
        t_open22 = span.stop()
        span = r3_30.measure()
        suite30[number](r3_30)
        t_native30 = span.stop()
        assert t_open22 > t_native30
