"""Cross-variant validation (the paper's Section 3.3 validation step).

Every SAP implementation of every TPC-D query must return exactly the
rows the isolated RDBMS returns — across both releases and both query
interfaces.  68 checks in total.
"""

import pytest

from repro.reports import native22, native30, open22, open30
from repro.tpcd.answers import assert_rows_match
from tests.conftest import SF

SUITES = {
    "native22": (native22, "r3_22"),
    "open22": (open22, "r3_22"),
    "native30": (native30, "r3_30"),
    "open30": (open30, "r3_30"),
}


@pytest.mark.parametrize("suite_name", list(SUITES))
@pytest.mark.parametrize("number", range(1, 18))
def test_query_matches_rdbms(suite_name, number, reference_results,
                             request):
    module, fixture_name = SUITES[suite_name]
    r3 = request.getfixturevalue(fixture_name)
    queries = module.make_queries(SF)
    got = queries[number](r3)
    assert_rows_match(
        reference_results[number], got,
        label=f"Q{number}/{suite_name}",
    )


def test_22_and_30_native_agree(reference_results, r3_22, r3_30):
    """Old reports still work after the upgrade (paper Section 3.4.4)."""
    old = native22.make_queries(SF)[13](r3_22)
    new = native30.make_queries(SF)[13](r3_30)
    assert old == new
