"""EIS warehouse extension tests."""

import pytest

from repro.tpcd.answers import assert_rows_match
from repro.tpcd.queries import build_queries, run_query
from repro.warehouse.eis import (
    EisWarehouse,
    breakeven_queries,
    parse_feed_line,
)
from tests.conftest import SF


@pytest.fixture(scope="module")
def warehouse(r3_30):
    return EisWarehouse.build_from_sap(r3_30)


class TestFeedParsing:
    def test_lineitem_line(self):
        line = ("7|3|2|1|10.0|1234.5|0.05|0.02|N|O|1996-01-02|"
                "1996-02-01|1996-01-20|NONE|MAIL|a comment")
        row = parse_feed_line("lineitem", line)
        assert row[0] == 7 and row[4] == 10.0
        assert row[10].isoformat() == "1996-01-02"

    def test_padding_for_lost_comments(self):
        row = parse_feed_line("region", "0|AFRICA")
        assert row == (0, "AFRICA", "")

    def test_field_count_checked(self):
        with pytest.raises(ValueError):
            parse_feed_line("region", "0|AFRICA|x|y")


class TestWarehouse:
    def test_build_loads_everything(self, warehouse, tpcd_data):
        db = warehouse.db
        assert db.execute("SELECT COUNT(*) FROM lineitem").scalar() == \
            len(tpcd_data.lineitem)
        assert db.execute("SELECT COUNT(*) FROM orders").scalar() == \
            len(tpcd_data.orders)
        assert warehouse.build.rows_loaded > 0

    def test_warehouse_answers_match_rdbms(self, warehouse,
                                           reference_results):
        """Most queries must be answerable identically from the feed.

        Queries touching columns the SAP mapping drops (nation/region/
        partsupp comments) still run; Q16 touches s_comment which IS
        preserved via STXL."""
        for number in (1, 3, 4, 5, 6, 7, 8, 10, 12, 13, 14, 15, 16, 17):
            got = warehouse.run_query(number, SF)
            assert_rows_match(reference_results[number], got.rows,
                              label=f"Q{number}/eis")

    def test_warehouse_queries_cost_like_rdbms(self, warehouse,
                                               rdbms_db):
        spec = build_queries(SF)[6]
        span = rdbms_db.clock.span()
        run_query(rdbms_db, spec)
        rdbms_s = span.stop()
        warehouse.run_query(6, SF)
        eis_s = warehouse.query_times["Q6"]
        assert eis_s == pytest.approx(rdbms_s, rel=1.0)

    def test_breakeven_math(self):
        assert breakeven_queries(100.0, 20.0, 10.0) == 10.0
        assert breakeven_queries(100.0, 10.0, 20.0) == float("inf")
