"""Warehouse-extraction fidelity + SAP update functions."""

import pytest

from repro.core.powertest import build_sap_system
from repro.r3.appserver import R3Version
from repro.reports.updatefuncs import run_uf1_sap, run_uf2_sap
from repro.tpcd.dbgen import (
    delete_keys,
    generate,
    generate_refresh_orders,
)
from repro.warehouse import extract_all
from repro.warehouse.extract import (
    extract_lineitem,
    extract_orders,
    extract_part,
    extract_supplier,
)


class TestWarehouseFidelity:
    """The extracted ASCII must reconstruct the generated data."""

    def test_supplier_roundtrip(self, r3_30, tpcd_data):
        lines = sorted(extract_supplier(r3_30),
                       key=lambda line: int(line.split("|")[0]))
        assert len(lines) == len(tpcd_data.supplier)
        first = lines[0].split("|")
        source = tpcd_data.supplier[0]
        assert int(first[0]) == source[0]
        assert first[1] == source[1]      # name
        assert int(first[3]) == source[3]  # nationkey
        assert first[6] == source[6]      # comment via STXL

    def test_orders_roundtrip(self, r3_30, tpcd_data):
        lines = {int(line.split("|")[0]): line.split("|")
                 for line in extract_orders(r3_30)}
        source = tpcd_data.orders[0]
        extracted = lines[source[0]]
        assert int(extracted[1]) == source[1]         # custkey
        assert extracted[2] == source[2]              # status
        assert float(extracted[3]) == source[3]       # totalprice
        assert extracted[4] == source[4].isoformat()  # orderdate

    def test_lineitem_roundtrip(self, r3_30, tpcd_data):
        lines = extract_lineitem(r3_30)
        assert len(lines) == len(tpcd_data.lineitem)
        by_key = {}
        for line in lines:
            parts = line.split("|")
            by_key[(int(parts[0]), int(parts[3]))] = parts
        source = tpcd_data.lineitem[0]
        extracted = by_key[(source[0], source[3])]
        assert int(extracted[1]) == source[1]          # partkey
        assert float(extracted[4]) == source[4]        # quantity
        assert float(extracted[6]) == pytest.approx(source[6])  # discount
        assert float(extracted[7]) == pytest.approx(source[7])  # tax
        assert extracted[15] == source[15]             # comment

    def test_part_includes_pooled_price(self, r3_30, tpcd_data):
        lines = {int(line.split("|")[0]): line.split("|")
                 for line in extract_part(r3_30)}
        source = tpcd_data.part[0]
        extracted = lines[source[0]]
        assert float(extracted[7]) == source[7]  # price via A004->KONP
        assert int(extracted[5]) == source[5]    # size via AUSP

    def test_extract_all_row_counts(self, r3_30, tpcd_data):
        results = extract_all(r3_30)
        assert results["PARTSUPP"].rows == len(tpcd_data.partsupp)
        assert results["CUSTOMER"].rows == len(tpcd_data.customer)
        assert results["NATION"].rows == 25

    def test_lines_dropped_unless_requested(self, r3_30):
        assert extract_all(r3_30)["REGION"].lines == []
        assert extract_all(r3_30, keep_lines=True)["REGION"].lines


class TestSapUpdateFunctions:
    @pytest.fixture()
    def world(self):
        data = generate(0.0005, seed=21)
        r3 = build_sap_system(data, R3Version.V22)
        return data, r3

    def _order_count(self, r3):
        return len(r3.open_sql.select("SELECT vbeln FROM vbak").rows)

    def test_uf1_inserts_documents(self, world):
        data, r3 = world
        refresh = generate_refresh_orders(data)
        before = self._order_count(r3)
        run_uf1_sap(r3, refresh)
        assert self._order_count(r3) == before + len(refresh.orders)
        # conditions landed in the cluster too
        from repro.sapschema.mapping import KeyCodec

        new_key = KeyCodec.knumv(refresh.orders[0][0])
        rows = r3.open_sql.select(
            "SELECT kposn FROM konv WHERE knumv = :k", {"k": new_key}
        )
        assert len(rows) > 0

    def test_uf2_removes_documents_everywhere(self, world):
        data, r3 = world
        doomed = delete_keys(data)[:2]
        run_uf2_sap(r3, doomed)
        from repro.sapschema.mapping import KeyCodec

        for orderkey in doomed:
            vbeln = KeyCodec.vbeln(orderkey)
            assert r3.open_sql.select_single(
                "SELECT SINGLE vbeln FROM vbak WHERE vbeln = :v",
                {"v": vbeln}) is None
            assert r3.open_sql.select(
                "SELECT posnr FROM vbap WHERE vbeln = :v",
                {"v": vbeln}).rows == []
            assert r3.open_sql.select(
                "SELECT kposn FROM konv WHERE knumv = :k",
                {"k": KeyCodec.knumv(orderkey)}).rows == []

    def test_uf2_works_after_upgrade(self, world):
        data, r3 = world
        from repro.r3.upgrade import upgrade_to_30

        upgrade_to_30(r3)
        doomed = delete_keys(data)[:1]
        run_uf2_sap(r3, doomed)
        from repro.sapschema.mapping import KeyCodec

        assert r3.open_sql.select(
            "SELECT kposn FROM konv WHERE knumv = :k",
            {"k": KeyCodec.knumv(doomed[0])}).rows == []

    def test_uf_on_sap_slower_than_rdbms(self, world):
        data, r3 = world
        from repro.tpcd.loader import load_original
        from repro.tpcd.updates import run_uf1_rdbms

        refresh = generate_refresh_orders(data)
        db = load_original(data)
        span = db.clock.span()
        run_uf1_rdbms(db, refresh)
        rdbms_s = span.stop()
        span = r3.measure()
        run_uf1_sap(r3, refresh)
        sap_s = span.stop()
        assert sap_s > 3 * rdbms_s
