import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.buffer import BufferPool
from repro.engine.errors import ExecutionError
from repro.engine.index import BTreeIndex, HashIndex, make_key
from repro.engine.schema import Column, TableSchema
from repro.engine.types import SqlType
from repro.sim.clock import SimulatedClock
from repro.sim.disk import DiskModel
from repro.sim.metrics import MetricsCollector


def _index(columns=("a",), unique=False, cls=BTreeIndex):
    schema = TableSchema("t", [
        Column("a", SqlType.integer()),
        Column("b", SqlType.char(8)),
    ])
    clock = SimulatedClock()
    metrics = MetricsCollector()
    disk = DiskModel(clock, metrics, 0.001, 0.01, 0.01)
    pool = BufferPool(64, disk, clock, metrics, 0.00001)
    return cls("idx", schema, list(columns), unique, pool, clock,
               metrics, 0.0001, 8192)


class TestBTreeIndex:
    def test_eq_lookup(self):
        index = _index()
        index.insert((5, "x"), 100)
        index.insert((5, "y"), 101)
        index.insert((7, "z"), 102)
        assert sorted(index.search_eq((5,))) == [100, 101]
        assert index.search_eq((6,)) == []

    def test_delete(self):
        index = _index()
        index.insert((5, "x"), 100)
        index.delete((5, "x"), 100)
        assert index.search_eq((5,)) == []

    def test_delete_missing_entry(self):
        index = _index()
        with pytest.raises(ExecutionError):
            index.delete((5, "x"), 100)

    def test_unique_violation(self):
        index = _index(unique=True)
        index.insert((5, "x"), 1)
        with pytest.raises(ExecutionError):
            index.insert((5, "y"), 2)

    def test_range_scan(self):
        index = _index()
        for i in range(10):
            index.insert((i, ""), i)
        hits = [rowid for _k, rowid in index.search_range((3,), (6,))]
        assert hits == [3, 4, 5, 6]

    def test_range_exclusive_bounds(self):
        index = _index()
        for i in range(10):
            index.insert((i, ""), i)
        hits = [r for _k, r in index.search_range((3,), (6,), False, False)]
        assert hits == [4, 5]

    def test_range_unbounded(self):
        index = _index()
        for i in range(5):
            index.insert((i, ""), i)
        assert len(list(index.search_range(None, (2,)))) == 3
        assert len(list(index.search_range((3,), None))) == 2

    def test_prefix_scan_composite(self):
        index = _index(columns=("a", "b"))
        index.insert((1, "x"), 0)
        index.insert((1, "y"), 1)
        index.insert((2, "x"), 2)
        hits = [rowid for _k, rowid in index.search_prefix((1,))]
        assert hits == [0, 1]

    def test_null_keys_sort_first_and_are_allowed(self):
        index = _index()
        index.insert((None, ""), 0)
        index.insert((1, ""), 1)
        keys = [k for k, _r in index.scan_all()]
        assert keys[0][0] == (0, 0)

    def test_size_accounting(self):
        index = _index()
        assert index.size_bytes == 0
        index.insert((1, ""), 0)
        assert index.size_bytes == index.entry_byte_width
        assert index.entry_byte_width == 4 + 8

    def test_string_keys_are_wider(self):
        int_index = _index(columns=("a",))
        str_index = _index(columns=("b",))
        assert str_index.entry_byte_width > int_index.entry_byte_width

    def test_page_count_grows(self):
        index = _index()
        assert index.page_count == 0
        for i in range(index.entries_per_page + 1):
            index.insert((i, ""), i)
        assert index.leaf_page_count == 2


class TestHashIndex:
    def test_eq_only(self):
        index = _index(cls=HashIndex)
        index.insert((5, "x"), 10)
        assert index.search_eq((5,)) == [10]
        assert index.search_eq((6,)) == []
        assert not hasattr(index, "search_range")

    def test_delete(self):
        index = _index(cls=HashIndex)
        index.insert((5, "x"), 10)
        index.delete((5, "x"), 10)
        assert index.search_eq((5,)) == []
        assert index.entry_count == 0

    def test_unique(self):
        index = _index(unique=True, cls=HashIndex)
        index.insert((1, "x"), 0)
        with pytest.raises(ExecutionError):
            index.insert((1, "x"), 1)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 50), min_size=0, max_size=60),
       st.integers(0, 50), st.integers(0, 50))
def test_btree_range_matches_naive(values, lo_raw, hi_raw):
    lo, hi = min(lo_raw, hi_raw), max(lo_raw, hi_raw)
    index = _index()
    for rowid, value in enumerate(values):
        index.insert((value, ""), rowid)
    got = sorted(r for _k, r in index.search_range((lo,), (hi,)))
    expected = sorted(i for i, v in enumerate(values) if lo <= v <= hi)
    assert got == expected


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 20), min_size=1, max_size=40))
def test_btree_insert_delete_roundtrip(values):
    index = _index()
    for rowid, value in enumerate(values):
        index.insert((value, ""), rowid)
    for rowid, value in enumerate(values):
        index.delete((value, ""), rowid)
    assert index.entry_count == 0


def test_make_key_total_order_with_nulls():
    assert make_key((None,)) < make_key((0,))
    assert make_key((0,)) < make_key((1,))
