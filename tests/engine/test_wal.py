"""WAL unit tests: framing, serialization, store semantics, group commit."""

import datetime

import pytest

from repro.engine.database import Database
from repro.engine.errors import (
    EngineError,
    PermanentError,
    PlanError,
    SimulatedCrash,
    TornWriteError,
    TransientError,
    WalCorruptionError,
)
from repro.engine.schema import Column, TableSchema
from repro.engine.types import SqlType
from repro.engine.wal import (
    DurableStore,
    WalRecord,
    decode_record,
    encode_record,
    frame_payload,
    schema_from_payload,
    schema_to_payload,
    unframe_payload,
)
from repro.sim.params import SimParams


def _schema() -> TableSchema:
    return TableSchema(
        "t",
        [Column("id", SqlType.integer()), Column("v", SqlType.char(8)),
         Column("d", SqlType.date())],
        ["id"],
    )


def _durable_db(params: SimParams | None = None):
    params = params or SimParams()
    store = DurableStore(params)
    db = Database(params=params, durability="wal", store=store)
    return db, store


# -- framing -----------------------------------------------------------------


class TestFraming:
    def test_roundtrip(self):
        frame = frame_payload(b"hello wal")
        assert unframe_payload(frame) == b"hello wal"

    @pytest.mark.parametrize("cut", [1, 3, 7, -1])
    def test_truncated_frame_is_torn(self, cut):
        frame = frame_payload(b"some payload bytes")
        with pytest.raises(TornWriteError):
            unframe_payload(frame[:cut])

    def test_bitflip_fails_crc(self):
        frame = bytearray(frame_payload(b"some payload bytes"))
        frame[6] ^= 0xFF
        with pytest.raises(TornWriteError):
            unframe_payload(bytes(frame))

    def test_torn_is_transient_corruption_is_permanent(self):
        # The taxonomy the retry ladders rely on (ROBUSTNESS_COUNTERS).
        assert issubclass(TornWriteError, TransientError)
        assert issubclass(WalCorruptionError, PermanentError)
        # SimulatedCrash sits under neither branch: no retry ladder may
        # swallow a process death.
        assert issubclass(SimulatedCrash, EngineError)
        assert not issubclass(SimulatedCrash, TransientError)
        assert not issubclass(SimulatedCrash, PermanentError)

    def test_record_roundtrip_with_date(self):
        record = WalRecord(
            kind="insert", txn=7, lsn=42, table="t", rowid=3,
            row=(1, "x", datetime.date(1997, 6, 1)),
            old=None, payload={"k": [1, 2.5, None, b"raw"]},
        )
        decoded = decode_record(encode_record(record))
        assert decoded == record
        assert isinstance(decoded.row[2], datetime.date)

    def test_schema_payload_roundtrip(self):
        schema = _schema()
        rebuilt = schema_from_payload(schema_to_payload(schema))
        assert rebuilt.name == schema.name
        assert rebuilt.primary_key == schema.primary_key
        assert [c.name for c in rebuilt.columns] == \
            [c.name for c in schema.columns]
        assert [c.sql_type for c in rebuilt.columns] == \
            [c.sql_type for c in schema.columns]


# -- durable store -----------------------------------------------------------


class TestDurableStore:
    def test_freeze_makes_writes_noops(self):
        store = DurableStore()
        store.append_frame(1, frame_payload(b"a"))
        store.freeze()
        store.append_frame(2, frame_payload(b"b"))
        store.rotate()
        assert store.frame_count == 1
        assert store.segment_count == 1
        store.thaw()
        store.append_frame(2, frame_payload(b"b"))
        assert store.frame_count == 2

    def test_records_drops_only_torn_tail(self):
        db, store = _durable_db()
        db.create_table(_schema())
        table = db.catalog.table("t")
        table.insert((1, "a", datetime.date(1997, 1, 1)))
        table.insert((2, "b", datetime.date(1997, 1, 2)))
        store.tear_tail_frame()
        records, torn = store.records()
        assert torn == 1
        assert records  # earlier history still decodes

    def test_mid_log_damage_raises_permanent(self):
        db, store = _durable_db()
        db.create_table(_schema())
        table = db.catalog.table("t")
        for i in range(4):
            table.insert((i, "x", datetime.date(1997, 1, 1)))
        store.corrupt_mid_frame()
        with pytest.raises(WalCorruptionError):
            store.records()


# -- logging behaviour -------------------------------------------------------


class TestWriteAheadLog:
    def test_autocommit_per_unbatched_mutation(self):
        db, store = _durable_db()
        db.create_table(_schema())
        table = db.catalog.table("t")
        before = db.metrics.get("wal.autocommits")
        table.insert((1, "a", datetime.date(1997, 1, 1)))
        assert db.metrics.get("wal.autocommits") == before + 1
        # each record is immediately durable: insert + its commit
        kinds = [r.kind for r in store.records()[0]]
        assert kinds[-2:] == ["insert", "commit"]

    def test_group_commit_single_fsync(self):
        db, _ = _durable_db()
        db.create_table(_schema())
        table = db.catalog.table("t")
        fsyncs_before = db.metrics.get("disk.fsyncs")
        db.begin()
        for i in range(10):
            table.insert((i, "x", datetime.date(1997, 1, 1)))
        db.commit()
        # one forced flush for the whole transaction group
        assert db.metrics.get("disk.fsyncs") == fsyncs_before + 1
        assert db.metrics.get("wal.commits") == 1

    def test_transactions_do_not_nest(self):
        db, _ = _durable_db()
        db.begin()
        with pytest.raises(EngineError):
            db.wal.begin()

    def test_segment_rotation_and_truncation(self):
        params = SimParams()
        params.wal_segment_records = 8
        params.wal_checkpoint_every_records = None
        db, store = _durable_db(params)
        db.create_table(_schema())
        table = db.catalog.table("t")
        for i in range(40):
            table.insert((i, "x", datetime.date(1997, 1, 1)))
        assert store.segment_count > 1
        assert db.metrics.get("wal.segments_rotated") > 0
        db.checkpoint()
        assert db.metrics.get("wal.segments_truncated") > 0
        # everything still decodes after truncation
        records, torn = store.records()
        assert torn == 0 and records

    def test_checkpoint_charges_dirty_pages(self):
        db, store = _durable_db()
        db.create_table(_schema())
        table = db.catalog.table("t")
        for i in range(10):
            table.insert((i, "x", datetime.date(1997, 1, 1)))
        db.checkpoint()
        assert store.image is not None
        assert db.metrics.get("wal.checkpoints") == 1
        assert db.metrics.get("wal.checkpoint_pages") >= 1

    def test_journal_rides_in_commit_record(self):
        db, store = _durable_db()
        db.create_table(_schema())
        db.begin()
        db.catalog.table("t").insert((1, "a", datetime.date(1997, 1, 1)))
        db.commit(journal=b"journal-bytes")
        commits = [r for r in store.records()[0] if r.kind == "commit"]
        assert commits[-1].payload == b"journal-bytes"
        db.checkpoint()
        assert store.image.journal == b"journal-bytes"

    def test_dead_wal_ignores_everything(self):
        db, store = _durable_db()
        db.create_table(_schema())
        table = db.catalog.table("t")
        table.insert((1, "a", datetime.date(1997, 1, 1)))
        frames = store.frame_count
        db.crash()
        # post-crash cleanup paths may still run; none of it is durable
        table.insert((2, "b", datetime.date(1997, 1, 1)))
        db.begin()
        db.commit()
        db.checkpoint()
        assert store.frame_count == frames

    def test_unknown_durability_mode_rejected(self):
        with pytest.raises(PlanError):
            Database(params=SimParams(), durability="fsync-every-row")
