"""Property-based whole-query tests: the engine vs a Python oracle."""

from hypothesis import given, settings, strategies as st

from repro.engine import Column, Database, SqlType, TableSchema

rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 20),                      # k
        st.integers(0, 5),                       # grp
        st.one_of(st.none(), st.integers(-50, 50)),  # v (nullable)
    ),
    min_size=0, max_size=40,
)


def _build(rows):
    db = Database()
    db.create_table(TableSchema("t", [
        Column("k", SqlType.integer()),
        Column("grp", SqlType.integer()),
        Column("v", SqlType.integer()),
    ]))
    db.bulk_load("t", [tuple(row) for row in rows])
    db.analyze()
    return db


@settings(max_examples=40, deadline=None)
@given(rows_strategy, st.integers(-50, 50))
def test_where_filter_matches_python(rows, threshold):
    db = _build(rows)
    got = db.execute("SELECT k FROM t WHERE v > ?", (threshold,))
    expected = sorted(r[0] for r in rows
                      if r[2] is not None and r[2] > threshold)
    assert sorted(v for (v,) in got.rows) == expected


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_group_by_matches_python(rows):
    db = _build(rows)
    got = db.execute(
        "SELECT grp, COUNT(*), COUNT(v), SUM(v) FROM t GROUP BY grp"
    )
    expected: dict[int, list] = {}
    for _k, grp, v in rows:
        entry = expected.setdefault(grp, [0, 0, None])
        entry[0] += 1
        if v is not None:
            entry[1] += 1
            entry[2] = (entry[2] or 0) + v
    assert len(got.rows) == len(expected)
    for grp, count, count_v, total in got.rows:
        assert expected[grp][0] == count
        assert expected[grp][1] == count_v
        assert expected[grp][2] == total


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_order_by_with_nulls_matches_python(rows):
    db = _build(rows)
    got = db.execute("SELECT v FROM t ORDER BY v")
    values = [r[2] for r in rows]
    nulls = [v for v in values if v is None]
    rest = sorted(v for v in values if v is not None)
    assert [v for (v,) in got.rows] == [None] * len(nulls) + rest


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_distinct_matches_python(rows):
    db = _build(rows)
    got = db.execute("SELECT DISTINCT grp FROM t")
    assert sorted(g for (g,) in got.rows) == sorted({r[1] for r in rows})


@settings(max_examples=30, deadline=None)
@given(rows_strategy, rows_strategy)
def test_equijoin_matches_python(left_rows, right_rows):
    db = Database()
    for name in ("a", "b"):
        db.create_table(TableSchema(name, [
            Column("k", SqlType.integer()),
            Column("grp", SqlType.integer()),
            Column("v", SqlType.integer()),
        ]))
    db.bulk_load("a", [tuple(r) for r in left_rows])
    db.bulk_load("b", [tuple(r) for r in right_rows])
    db.analyze()
    got = db.execute(
        "SELECT a.k, b.k FROM a, b WHERE a.grp = b.grp"
    )
    expected = sorted(
        (la[0], rb[0])
        for la in left_rows for rb in right_rows if la[1] == rb[1]
    )
    assert sorted(got.rows) == expected


@settings(max_examples=30, deadline=None)
@given(rows_strategy)
def test_index_and_scan_agree(rows):
    """An indexed range scan must return exactly what the filter does."""
    db = _build(rows)
    db.create_index("idx_t_v", "t", ["v"])
    literal = db.execute("SELECT k FROM t WHERE v >= 0 AND v <= 10")
    # Parameterized: the blind path prefers the index.
    prepared = db.prepare("SELECT k FROM t WHERE v >= ? AND v <= ?")
    assert sorted(literal.rows) == sorted(prepared.execute((0, 10)).rows)


@settings(max_examples=30, deadline=None)
@given(rows_strategy, st.integers(0, 5))
def test_delete_then_count(rows, grp):
    db = _build(rows)
    deleted = db.execute("DELETE FROM t WHERE grp = ?", (grp,)).scalar()
    remaining = db.execute("SELECT COUNT(*) FROM t").scalar()
    assert deleted == sum(1 for r in rows if r[1] == grp)
    assert remaining == len(rows) - deleted
