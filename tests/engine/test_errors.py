"""Error-hierarchy contract: transient vs permanent branches."""

from repro.engine import errors


class TestHierarchy:
    def test_transient_branch(self):
        for exc in (errors.DiskIOError, errors.ConnectionLostError,
                    errors.StatementTimeout):
            assert issubclass(exc, errors.TransientError)
            assert issubclass(exc, errors.EngineError)
            assert not issubclass(exc, errors.PermanentError)

    def test_permanent_branch(self):
        for exc in (errors.SqlSyntaxError, errors.CatalogError,
                    errors.PlanError, errors.ExecutionError,
                    errors.TypeError_, errors.ConstraintError):
            assert issubclass(exc, errors.PermanentError)
            assert issubclass(exc, errors.EngineError)
            assert not issubclass(exc, errors.TransientError)

    def test_branches_are_disjoint(self):
        assert not issubclass(errors.TransientError, errors.PermanentError)
        assert not issubclass(errors.PermanentError, errors.TransientError)
