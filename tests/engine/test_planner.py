"""Plan-quality tests: the optimizer behaviours the paper depends on."""

import pytest

from repro.engine import Column, Database, SqlType, TableSchema


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.create_table(TableSchema("big", [
        Column("k", SqlType.integer(), nullable=False),
        Column("grp", SqlType.integer()),
        Column("qty", SqlType.decimal()),
        Column("pad", SqlType.char(80)),
    ], primary_key=["k"]))
    database.create_table(TableSchema("small", [
        Column("id", SqlType.integer(), nullable=False),
        Column("label", SqlType.char(10)),
    ], primary_key=["id"]))
    database.create_index("idx_big_grp", "big", ["grp"])
    database.create_index("idx_big_qty", "big", ["qty"])
    rows = [(i, i % 1000, float(i % 500), "x" * 10) for i in range(5000)]
    database.bulk_load("big", rows)
    database.bulk_load("small", [(i, f"s{i}") for i in range(100)])
    database.analyze()
    return database


class TestAccessPaths:
    def test_pk_lookup_uses_index(self, db):
        plan = db.explain("SELECT qty FROM big WHERE k = 17")
        assert "IndexEqScan(big via pk_big)" in plan

    def test_selective_secondary_index(self, db):
        plan = db.explain("SELECT k FROM big WHERE grp = 5")
        assert "IndexEqScan(big via idx_big_grp)" in plan

    def test_non_selective_literal_range_scans(self, db):
        plan = db.explain("SELECT k FROM big WHERE qty < 9999")
        assert "SeqScan" in plan

    def test_selective_literal_range_uses_index(self, db):
        plan = db.explain("SELECT k FROM big WHERE qty < 1")
        assert "IndexRangeScan(big via idx_big_qty)" in plan

    def test_parameterized_range_blindly_uses_index(self, db):
        """The Table 6 trap: param markers hide selectivity, the
        optimizer falls back to the rule 'use the index'."""
        plan = db.prepare("SELECT k FROM big WHERE qty < ?").explain()
        assert "IndexRangeScan(big via idx_big_qty)" in plan

    def test_results_agree_between_paths(self, db):
        literal = db.execute("SELECT k FROM big WHERE qty < 300")
        prepared = db.prepare("SELECT k FROM big WHERE qty < ?")
        assert sorted(literal.rows) == \
            sorted(prepared.execute((300,)).rows)

    def test_composite_prefix_probe(self, db):
        plan = db.explain("SELECT pad FROM big WHERE k = 5 AND grp = 5")
        assert "IndexEqScan" in plan


class TestJoinPlanning:
    def test_comma_join_is_optimized(self, db):
        plan = db.explain(
            "SELECT label FROM big, small WHERE grp = small.id"
        )
        assert "HashJoin" in plan or "IndexNestedLoopJoin" in plan

    def test_selective_outer_drives_index_nested_loop(self, db):
        plan = db.explain(
            "SELECT label, pad FROM small, big "
            "WHERE small.id = 3 AND big.grp = small.id"
        )
        assert "IndexNestedLoopJoin(big via idx_big_grp)" in plan

    def test_ansi_join_keeps_written_order(self, db):
        plan = db.explain(
            "SELECT label FROM big JOIN small ON big.grp = small.id"
        )
        # big stays on the left (written first); the optimizer may
        # still pick the build side.
        first_scan = [line for line in plan.splitlines()
                      if "Scan" in line][0]
        assert "big" in first_scan

    def test_join_results_match_nested_loop_semantics(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM big, small WHERE grp = small.id"
        )
        # grp has 1000 values, small.id covers 0..99: 5 rows each.
        assert result.scalar() == 500

    def test_hash_join_build_side_is_smaller_input(self, db):
        plan = db.explain(
            "SELECT COUNT(*) FROM big, big b2 WHERE big.k = b2.grp"
        )
        assert "Join" in plan


class TestCorrelatedPushdown:
    def test_correlated_eq_probes_index(self, db):
        snap = db.metrics.snapshot()
        db.execute(
            "SELECT COUNT(*) FROM small WHERE id < 10 AND EXISTS "
            "(SELECT * FROM big WHERE big.grp = small.id)"
        )
        # Each of the 10 outer rows should probe, not scan, big.
        assert snap.get("table.big.tuples_scanned") == 0

    def test_correlated_scalar_value(self, db):
        result = db.execute(
            "SELECT id FROM small WHERE id = "
            "(SELECT MIN(grp) FROM big WHERE big.grp = small.id) "
            "AND id < 5"
        )
        assert sorted(result.rows) == [(0,), (1,), (2,), (3,), (4,)]


class TestStatistics:
    def test_analyze_records_ndv(self, db):
        stats = db.stats["big"]
        assert stats.columns["grp"].n_distinct == 1000
        assert stats.columns["k"].n_distinct == 5000

    def test_min_max(self, db):
        stats = db.stats["big"]
        assert stats.columns["qty"].min_value == 0.0
        assert stats.columns["qty"].max_value == 499.0

    def test_row_count(self, db):
        assert db.stats["big"].row_count == 5000
