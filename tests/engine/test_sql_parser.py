import datetime

import pytest

from repro.engine.errors import SqlSyntaxError
from repro.engine.expr import (
    AggCall,
    BetweenExpr,
    BinOp,
    CaseExpr,
    ColumnRef,
    InListExpr,
    LikeExpr,
    ParamRef,
    SubqueryExpr,
)
from repro.engine.sql.ast import (
    DeleteStmt,
    InsertStmt,
    JoinRef,
    SelectStmt,
    Star,
    UpdateStmt,
)
from repro.engine.sql.lexer import TokenKind, tokenize
from repro.engine.sql.parser import parse_select, parse_sql


class TestLexer:
    def test_keywords_uppercased(self):
        tokens = tokenize("select From")
        assert tokens[0].value == "SELECT"
        assert tokens[1].value == "FROM"

    def test_identifier_preserved(self):
        tokens = tokenize("foo_bar")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].value == "foo_bar"

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert [t.value for t in tokens[:2]] == ["42", "3.14"]

    def test_comment_skipped(self):
        tokens = tokenize("SELECT -- comment\n1")
        assert tokens[1].kind is TokenKind.NUMBER

    def test_operators(self):
        tokens = tokenize("<> <= >= < > =")
        assert [t.value for t in tokens[:-1]] == \
            ["<>", "<=", ">=", "<", ">", "="]

    def test_param_marker(self):
        assert tokenize("?")[0].kind is TokenKind.PARAM

    def test_bad_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT #")

    def test_trailing_dot_not_decimal(self):
        tokens = tokenize("1.a")
        assert tokens[0].value == "1"


class TestSelectParsing:
    def test_minimal(self):
        stmt = parse_sql("SELECT a FROM t")
        assert isinstance(stmt, SelectStmt)
        assert isinstance(stmt.items[0].expr, ColumnRef)
        assert stmt.from_items[0].name == "t"

    def test_star(self):
        stmt = parse_select("SELECT * FROM t")
        assert isinstance(stmt.items[0], Star)

    def test_qualified_star(self):
        stmt = parse_select("SELECT t.* FROM t")
        assert stmt.items[0].qualifier == "t"

    def test_aliases(self):
        stmt = parse_select("SELECT a AS x, b y FROM t u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_items[0].alias == "u"

    def test_where_group_having_order_limit(self):
        stmt = parse_select(
            "SELECT a, COUNT(*) FROM t WHERE b > 1 GROUP BY a "
            "HAVING COUNT(*) > 2 ORDER BY a DESC LIMIT 5"
        )
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].descending is True
        assert stmt.limit == 5

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT a FROM t").distinct

    def test_explicit_join(self):
        stmt = parse_select(
            "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y"
        )
        join = stmt.from_items[0]
        assert isinstance(join, JoinRef)
        assert join.outer is True
        assert isinstance(join.left, JoinRef)
        assert join.left.outer is False

    def test_comma_joins(self):
        stmt = parse_select("SELECT * FROM a, b, c")
        assert [item.name for item in stmt.from_items] == ["a", "b", "c"]

    def test_date_literal(self):
        stmt = parse_select("SELECT a FROM t WHERE d < DATE '1995-03-15'")
        assert stmt.where.right.value == datetime.date(1995, 3, 15)

    def test_interval_arithmetic(self):
        stmt = parse_select(
            "SELECT a FROM t WHERE d < DATE '1994-01-01' + INTERVAL '1' YEAR"
        )
        value = stmt.where.right.eval((), ())
        assert value == datetime.date(1995, 1, 1)

    def test_params_numbered_in_order(self):
        stmt = parse_select("SELECT a FROM t WHERE b = ? AND c = ?")
        conjuncts = [stmt.where.left, stmt.where.right]
        indexes = [c.right.index for c in conjuncts]
        assert indexes == [0, 1]

    def test_in_list(self):
        stmt = parse_select("SELECT a FROM t WHERE b IN (1, 2, 3)")
        assert isinstance(stmt.where, InListExpr)
        assert len(stmt.where.items) == 3

    def test_not_in_subquery(self):
        stmt = parse_select(
            "SELECT a FROM t WHERE b NOT IN (SELECT c FROM u)"
        )
        assert isinstance(stmt.where, SubqueryExpr)
        assert stmt.where.negated is True
        assert stmt.where.mode == "in"

    def test_exists(self):
        stmt = parse_select(
            "SELECT a FROM t WHERE EXISTS (SELECT * FROM u WHERE x = y)"
        )
        assert stmt.where.mode == "exists"

    def test_scalar_subquery(self):
        stmt = parse_select(
            "SELECT a FROM t WHERE b = (SELECT MAX(c) FROM u)"
        )
        assert isinstance(stmt.where.right, SubqueryExpr)
        assert stmt.where.right.mode == "scalar"

    def test_between_not_like(self):
        stmt = parse_select(
            "SELECT a FROM t WHERE b BETWEEN 1 AND 2 AND c NOT LIKE 'x%'"
        )
        left, right = stmt.where.left, stmt.where.right
        assert isinstance(left, BetweenExpr)
        assert isinstance(right, LikeExpr) and right.negated

    def test_case_expression(self):
        stmt = parse_select(
            "SELECT CASE WHEN a = 1 THEN 'one' ELSE 'other' END FROM t"
        )
        assert isinstance(stmt.items[0].expr, CaseExpr)

    def test_aggregate_distinct(self):
        stmt = parse_select("SELECT COUNT(DISTINCT a) FROM t")
        agg = stmt.items[0].expr
        assert isinstance(agg, AggCall) and agg.distinct

    def test_count_star(self):
        agg = parse_select("SELECT COUNT(*) FROM t").items[0].expr
        assert agg.arg is None

    def test_nested_arithmetic_precedence(self):
        stmt = parse_select("SELECT a + b * c FROM t")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parenthesized_or(self):
        stmt = parse_select(
            "SELECT a FROM t WHERE (a = 1 AND b = 2) OR (a = 2 AND b = 1)"
        )
        assert isinstance(stmt.where, BinOp) and stmt.where.op == "OR"

    def test_trailing_garbage(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT a FROM t garbage !")

    def test_missing_from(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT a")


class TestDmlParsing:
    def test_insert_values(self):
        stmt = parse_sql("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, InsertStmt)
        assert stmt.columns is None
        assert len(stmt.rows) == 2

    def test_insert_with_columns(self):
        stmt = parse_sql("INSERT INTO t (a, b) VALUES (?, ?)")
        assert stmt.columns == ["a", "b"]
        assert isinstance(stmt.rows[0][0], ParamRef)

    def test_delete(self):
        stmt = parse_sql("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, DeleteStmt)
        assert stmt.where is not None

    def test_delete_without_where(self):
        assert parse_sql("DELETE FROM t").where is None

    def test_update(self):
        stmt = parse_sql("UPDATE t SET a = a + 1, b = 'x' WHERE c = 2")
        assert isinstance(stmt, UpdateStmt)
        assert len(stmt.assignments) == 2

    def test_parse_select_rejects_dml(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("DELETE FROM t")
