import datetime

import pytest
from hypothesis import given, strategies as st

from repro.engine.errors import ExecutionError, PlanError
from repro.engine.expr import (
    BetweenExpr,
    BinOp,
    CaseExpr,
    ColumnRef,
    DateArithExpr,
    ExtractExpr,
    FuncCall,
    InListExpr,
    IntervalLiteral,
    IsNullExpr,
    LikeExpr,
    Literal,
    NegExpr,
    NotExpr,
    OutputSchema,
    ParamRef,
    conjoin,
    like_to_regex,
    predicate_holds,
    split_conjuncts,
)

SCHEMA = OutputSchema([("t", "a"), ("t", "b"), (None, "c")])


def ev(expr, row=(1, 2, 3), params=()):
    return expr.bind(SCHEMA).eval(row, params)


class TestColumnResolution:
    def test_qualified(self):
        assert ev(ColumnRef("t", "b")) == 2

    def test_unqualified(self):
        assert ev(ColumnRef(None, "c")) == 3

    def test_case_insensitive(self):
        assert ev(ColumnRef("T", "A")) == 1

    def test_unknown_column(self):
        with pytest.raises(PlanError):
            ColumnRef("t", "zzz").bind(SCHEMA)

    def test_ambiguous_column(self):
        schema = OutputSchema([("x", "k"), ("y", "k")])
        with pytest.raises(PlanError):
            ColumnRef(None, "k").bind(schema)

    def test_qualified_disambiguates(self):
        schema = OutputSchema([("x", "k"), ("y", "k")])
        assert schema.resolve("y", "k") == 1


class TestArithmeticAndComparison:
    def test_arithmetic(self):
        expr = BinOp("+", ColumnRef("t", "a"), Literal(10))
        assert ev(expr) == 11

    def test_division_by_zero(self):
        expr = BinOp("/", Literal(1), Literal(0))
        with pytest.raises(ExecutionError):
            ev(expr)

    def test_comparisons(self):
        assert ev(BinOp("<", ColumnRef("t", "a"), Literal(5))) is True
        assert ev(BinOp(">=", ColumnRef("t", "b"), Literal(2))) is True
        assert ev(BinOp("<>", Literal(1), Literal(1))) is False

    def test_negation(self):
        assert ev(NegExpr(ColumnRef("t", "a"))) == -1


class TestThreeValuedLogic:
    def test_comparison_with_null_is_null(self):
        assert ev(BinOp("=", Literal(None), Literal(1))) is None

    def test_and_false_dominates_null(self):
        expr = BinOp("AND", Literal(None), Literal(False))
        assert ev(expr) is False

    def test_and_null(self):
        assert ev(BinOp("AND", Literal(True), Literal(None))) is None

    def test_or_true_dominates_null(self):
        assert ev(BinOp("OR", Literal(None), Literal(True))) is True

    def test_or_null(self):
        assert ev(BinOp("OR", Literal(False), Literal(None))) is None

    def test_not_null(self):
        assert ev(NotExpr(Literal(None))) is None

    def test_predicate_holds_treats_null_as_false(self):
        expr = BinOp("=", Literal(None), Literal(1)).bind(SCHEMA)
        assert predicate_holds(expr, (), ()) is False

    def test_is_null(self):
        assert ev(IsNullExpr(Literal(None))) is True
        assert ev(IsNullExpr(Literal(1))) is False
        assert ev(IsNullExpr(Literal(None), negated=True)) is False

    def test_in_list_with_null_candidate(self):
        expr = InListExpr(Literal(5), [Literal(None), Literal(3)])
        assert ev(expr) is None

    def test_in_list_hit_beats_null(self):
        expr = InListExpr(Literal(3), [Literal(None), Literal(3)])
        assert ev(expr) is True

    def test_not_in_with_null_is_null(self):
        expr = InListExpr(Literal(5), [Literal(None)], negated=True)
        assert ev(expr) is None

    def test_between_null_bound(self):
        expr = BetweenExpr(Literal(5), Literal(None), Literal(10))
        assert ev(expr) is None


class TestBetweenAndIn:
    def test_between_inclusive(self):
        assert ev(BetweenExpr(Literal(5), Literal(5), Literal(10))) is True
        assert ev(BetweenExpr(Literal(10), Literal(5), Literal(10))) is True
        assert ev(BetweenExpr(Literal(11), Literal(5), Literal(10))) is False

    def test_not_between(self):
        expr = BetweenExpr(Literal(11), Literal(5), Literal(10),
                           negated=True)
        assert ev(expr) is True

    def test_in_list(self):
        expr = InListExpr(ColumnRef("t", "a"),
                          [Literal(1), Literal(9)])
        assert ev(expr) is True

    def test_not_in_list(self):
        expr = InListExpr(Literal(7), [Literal(1)], negated=True)
        assert ev(expr) is True


class TestLike:
    @pytest.mark.parametrize("pattern,text,expected", [
        ("%BRASS", "SMALL BRASS", True),
        ("%BRASS", "BRASS PLATED", False),
        ("PROMO%", "PROMO TIN", True),
        ("%green%", "dark green ivory", True),
        ("a_c", "abc", True),
        ("a_c", "abbc", False),
        ("%Customer%Complaints%", "x Customer yy Complaints", True),
        ("", "", True),
        ("%", "anything", True),
    ])
    def test_patterns(self, pattern, text, expected):
        expr = LikeExpr(Literal(text), Literal(pattern))
        assert ev(expr) is expected

    def test_not_like(self):
        expr = LikeExpr(Literal("abc"), Literal("z%"), negated=True)
        assert ev(expr) is True

    def test_null_operand(self):
        assert ev(LikeExpr(Literal(None), Literal("%"))) is None

    def test_regex_special_chars_escaped(self):
        assert ev(LikeExpr(Literal("a.c"), Literal("a.c"))) is True
        assert ev(LikeExpr(Literal("abc"), Literal("a.c"))) is False

    @given(st.text(alphabet="ab%_", max_size=8),
           st.text(alphabet="ab", max_size=8))
    def test_like_never_crashes(self, pattern, text):
        like_to_regex(pattern).match(text)


class TestCase:
    def test_first_matching_branch_wins(self):
        expr = CaseExpr(
            [(Literal(True), Literal("x")), (Literal(True), Literal("y"))],
            Literal("z"),
        )
        assert ev(expr) == "x"

    def test_else(self):
        expr = CaseExpr([(Literal(False), Literal("x"))], Literal("z"))
        assert ev(expr) == "z"

    def test_no_else_yields_null(self):
        expr = CaseExpr([(Literal(False), Literal("x"))], None)
        assert ev(expr) is None

    def test_null_condition_skipped(self):
        expr = CaseExpr([(Literal(None), Literal("x"))], Literal("y"))
        assert ev(expr) == "y"


class TestDates:
    def test_extract(self):
        d = Literal(datetime.date(1994, 3, 17))
        assert ev(ExtractExpr("YEAR", d)) == 1994
        assert ev(ExtractExpr("MONTH", d)) == 3
        assert ev(ExtractExpr("DAY", d)) == 17

    def test_extract_from_non_date(self):
        with pytest.raises(ExecutionError):
            ev(ExtractExpr("YEAR", Literal(5)))

    def test_interval_day(self):
        d = Literal(datetime.date(1998, 12, 1))
        expr = DateArithExpr(d, IntervalLiteral(90, "DAY"), -1)
        assert ev(expr) == datetime.date(1998, 9, 2)

    def test_interval_month(self):
        d = Literal(datetime.date(1993, 7, 1))
        expr = DateArithExpr(d, IntervalLiteral(3, "MONTH"), 1)
        assert ev(expr) == datetime.date(1993, 10, 1)

    def test_interval_month_clamps_day(self):
        d = Literal(datetime.date(1993, 1, 31))
        expr = DateArithExpr(d, IntervalLiteral(1, "MONTH"), 1)
        assert ev(expr) == datetime.date(1993, 2, 28)

    def test_interval_year(self):
        d = Literal(datetime.date(1994, 1, 1))
        expr = DateArithExpr(d, IntervalLiteral(1, "YEAR"), 1)
        assert ev(expr) == datetime.date(1995, 1, 1)

    def test_interval_year_leap_day(self):
        d = Literal(datetime.date(1996, 2, 29))
        expr = DateArithExpr(d, IntervalLiteral(1, "YEAR"), 1)
        assert ev(expr) == datetime.date(1997, 2, 28)

    def test_bad_interval_unit(self):
        with pytest.raises(PlanError):
            IntervalLiteral(1, "FORTNIGHT")


class TestFunctions:
    def test_substring(self):
        expr = FuncCall("SUBSTRING", [Literal("hello"), Literal(2),
                                      Literal(3)])
        assert ev(expr) == "ell"

    def test_upper_lower(self):
        assert ev(FuncCall("UPPER", [Literal("abc")])) == "ABC"
        assert ev(FuncCall("LOWER", [Literal("ABC")])) == "abc"

    def test_abs_round(self):
        assert ev(FuncCall("ABS", [Literal(-4)])) == 4
        assert ev(FuncCall("ROUND", [Literal(3.14159), Literal(2)])) == 3.14

    def test_null_propagates(self):
        assert ev(FuncCall("UPPER", [Literal(None)])) is None

    def test_unknown_function(self):
        with pytest.raises(ExecutionError):
            ev(FuncCall("FROBNICATE", [Literal(1)]))


class TestParams:
    def test_param_lookup(self):
        assert ev(ParamRef(1), params=("a", "b")) == "b"

    def test_missing_param(self):
        with pytest.raises(ExecutionError):
            ev(ParamRef(3), params=())


class TestConjunctHelpers:
    def test_split_flattens_nested_ands(self):
        expr = BinOp("AND", BinOp("AND", Literal(1), Literal(2)),
                     Literal(3))
        assert len(split_conjuncts(expr)) == 3

    def test_split_none(self):
        assert split_conjuncts(None) == []

    def test_or_not_split(self):
        expr = BinOp("OR", Literal(1), Literal(2))
        assert len(split_conjuncts(expr)) == 1

    def test_conjoin_roundtrip(self):
        parts = [Literal(True), Literal(True), Literal(False)]
        rebuilt = conjoin(parts)
        assert ev(rebuilt) is False

    def test_conjoin_empty(self):
        assert conjoin([]) is None


@given(st.integers(-1000, 1000), st.integers(-1000, 1000))
def test_comparison_matches_python(a, b):
    for op, fn in [("<", a < b), ("<=", a <= b), (">", a > b),
                   (">=", a >= b), ("=", a == b), ("<>", a != b)]:
        expr = BinOp(op, Literal(a), Literal(b)).bind(SCHEMA)
        assert expr.eval((), ()) is fn


@given(st.integers(-100, 100), st.integers(-100, 100),
       st.integers(-100, 100))
def test_between_matches_python(x, lo, hi):
    expr = BetweenExpr(Literal(x), Literal(lo), Literal(hi)).bind(SCHEMA)
    assert expr.eval((), ()) is (lo <= x <= hi)
