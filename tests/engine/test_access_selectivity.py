"""Unit tests of the selectivity estimators and sarg extraction."""

import datetime

import pytest

from repro.engine.expr import (
    BetweenExpr,
    BinOp,
    ColumnRef,
    LikeExpr,
    Literal,
    ParamRef,
)
from repro.engine.plan.access import eq_sarg_value
from repro.engine.stats import (
    ColumnStats,
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    TableStats,
    eq_selectivity,
    range_selectivity,
)


def _stats(**columns):
    stats = TableStats(row_count=1000, analyzed=True)
    for name, (ndv, low, high) in columns.items():
        stats.columns[name] = ColumnStats(
            n_distinct=ndv, min_value=low, max_value=high
        )
    return stats


class TestEqSelectivity:
    def test_one_over_ndv(self):
        stats = _stats(c=(50, 0, 100))
        assert eq_selectivity(stats, "c", True) == pytest.approx(0.02)

    def test_ndv_works_without_the_value(self):
        """Parameter markers don't defeat the 1/NDV estimate."""
        stats = _stats(c=(50, 0, 100))
        assert eq_selectivity(stats, "c", False) == pytest.approx(0.02)

    def test_unanalyzed_falls_back(self):
        assert eq_selectivity(TableStats(), "c", True) == \
            DEFAULT_EQ_SELECTIVITY

    def test_unknown_column_falls_back(self):
        assert eq_selectivity(_stats(), "nope", True) == \
            DEFAULT_EQ_SELECTIVITY


class TestRangeSelectivity:
    def test_interpolation(self):
        stats = _stats(q=(100, 0.0, 100.0))
        assert range_selectivity(stats, "q", "<", 25.0) == \
            pytest.approx(0.25)
        assert range_selectivity(stats, "q", ">", 25.0) == \
            pytest.approx(0.75)

    def test_out_of_range_clamps(self):
        stats = _stats(q=(100, 0.0, 100.0))
        assert range_selectivity(stats, "q", "<", -5.0) == 0.0
        assert range_selectivity(stats, "q", "<", 500.0) == 1.0

    def test_dates_interpolate(self):
        stats = _stats(d=(100, datetime.date(1992, 1, 1),
                          datetime.date(1998, 1, 1)))
        mid = range_selectivity(stats, "d", "<", datetime.date(1995, 1, 1))
        assert 0.4 < mid < 0.6

    def test_unknown_value_is_blind(self):
        """The Table 6 mechanism: None means a parameter marker."""
        stats = _stats(q=(100, 0.0, 100.0))
        assert range_selectivity(stats, "q", "<", None) == \
            DEFAULT_RANGE_SELECTIVITY

    def test_degenerate_domain(self):
        stats = _stats(q=(1, 5.0, 5.0))
        assert range_selectivity(stats, "q", "<", 5.0) == \
            DEFAULT_RANGE_SELECTIVITY

    def test_non_numeric_falls_back(self):
        stats = _stats(s=(10, "a", "z"))
        assert range_selectivity(stats, "s", "<", "m") == \
            DEFAULT_RANGE_SELECTIVITY


class TestSargExtraction:
    def test_eq_with_literal(self):
        conjunct = BinOp("=", ColumnRef(None, "c"), Literal(5))
        assert eq_sarg_value(conjunct) == ("c", conjunct.right)

    def test_eq_reversed_operands(self):
        conjunct = BinOp("=", Literal(5), ColumnRef(None, "c"))
        assert eq_sarg_value(conjunct)[0] == "c"

    def test_eq_with_param(self):
        conjunct = BinOp("=", ColumnRef(None, "c"), ParamRef(0))
        assert eq_sarg_value(conjunct) is not None

    def test_range_is_not_eq(self):
        conjunct = BinOp("<", ColumnRef(None, "c"), Literal(5))
        assert eq_sarg_value(conjunct) is None

    def test_column_to_column_is_not_a_sarg(self):
        conjunct = BinOp("=", ColumnRef(None, "a"), ColumnRef(None, "b"))
        assert eq_sarg_value(conjunct) is None

    def test_like_and_between_are_not_eq_sargs(self):
        assert eq_sarg_value(
            LikeExpr(ColumnRef(None, "c"), Literal("x%"))) is None
        assert eq_sarg_value(
            BetweenExpr(ColumnRef(None, "c"), Literal(1), Literal(2))
        ) is None
