"""Direct unit tests of the physical operators."""

import pytest

from repro.engine.exec.aggregate import GroupAggregate
from repro.engine.exec.base import ExecContext, Operator
from repro.engine.exec.joins import HashJoin, MergeJoin, NestedLoopJoin
from repro.engine.exec.misc import (
    Alias,
    Distinct,
    Filter,
    Limit,
    Project,
    RowsSource,
)
from repro.engine.exec.sort import Sort, sort_rows
from repro.engine.expr import (
    AggCall,
    BinOp,
    ColumnRef,
    Literal,
    OutputSchema,
)
from repro.engine.buffer import BufferPool
from repro.sim.clock import SimulatedClock
from repro.sim.disk import DiskModel
from repro.sim.metrics import MetricsCollector
from repro.sim.params import SimParams


@pytest.fixture()
def ctx():
    clock = SimulatedClock()
    metrics = MetricsCollector()
    params = SimParams()
    disk = DiskModel(clock, metrics, params.seq_read_s,
                     params.random_read_s, params.write_s)
    pool = BufferPool(128, disk, clock, metrics, params.buffer_hit_s)
    return ExecContext(clock, metrics, params, pool)


def source(ctx, rows, names=("a", "b")):
    schema = OutputSchema([(None, n) for n in names])
    return RowsSource(ctx, schema, rows)


class TestPlumbing:
    def test_filter(self, ctx):
        op = Filter(ctx, source(ctx, [(1, 1), (2, 2), (3, 3)]),
                    BinOp(">", ColumnRef(None, "a"), Literal(1)))
        op.predicate.bind(op.schema)
        assert list(op.rows(())) == [(2, 2), (3, 3)]

    def test_project(self, ctx):
        expr = BinOp("*", ColumnRef(None, "a"), Literal(10))
        child = source(ctx, [(1, 0), (2, 0)])
        expr.bind(child.schema)
        op = Project(ctx, child, [expr], ["x"])
        assert list(op.rows(())) == [(10,), (20,)]

    def test_distinct_preserves_first_seen_order(self, ctx):
        op = Distinct(ctx, source(ctx, [(2, 0), (1, 0), (2, 0)]))
        assert list(op.rows(())) == [(2, 0), (1, 0)]

    def test_limit(self, ctx):
        op = Limit(ctx, source(ctx, [(i, 0) for i in range(10)]), 3)
        assert len(list(op.rows(()))) == 3

    def test_limit_zero(self, ctx):
        op = Limit(ctx, source(ctx, [(1, 0)]), 0)
        assert list(op.rows(())) == []

    def test_limit_does_not_exhaust_child(self, ctx):
        pulled = []

        class Counting(Operator):
            def __init__(self, inner):
                super().__init__(ctx, inner.schema)
                self.inner = inner

            def rows(self, params):
                for row in self.inner.rows(params):
                    pulled.append(row)
                    yield row

        op = Limit(ctx, Counting(source(ctx, [(i, 0) for i in range(10)])),
                   2)
        list(op.rows(()))
        assert len(pulled) == 2

    def test_alias_requalifies(self, ctx):
        op = Alias(ctx, source(ctx, [(1, 2)]), "v", ["x", "y"])
        assert op.schema.resolve("v", "y") == 1
        assert list(op.rows(())) == [(1, 2)]

    def test_explain_tree(self, ctx):
        op = Limit(ctx, source(ctx, []), 1)
        text = op.explain()
        assert "Limit(1)" in text and "RowsSource" in text


class TestJoins:
    def test_nested_loop_inner(self, ctx):
        left = source(ctx, [(1, 0), (2, 0)], names=("l", "lx"))
        right = source(ctx, [(1, 9), (3, 9)], names=("r", "rx"))
        cond = BinOp("=", ColumnRef(None, "l"), ColumnRef(None, "r"))
        join = NestedLoopJoin(ctx, left, right, cond)
        cond.bind(join.schema)
        assert list(join.rows(())) == [(1, 0, 1, 9)]

    def test_nested_loop_outer(self, ctx):
        left = source(ctx, [(1, 0), (2, 0)], names=("l", "lx"))
        right = source(ctx, [(1, 9)], names=("r", "rx"))
        cond = BinOp("=", ColumnRef(None, "l"), ColumnRef(None, "r"))
        join = NestedLoopJoin(ctx, left, right, cond, outer=True)
        cond.bind(join.schema)
        assert list(join.rows(())) == [(1, 0, 1, 9), (2, 0, None, None)]

    def test_cross_join(self, ctx):
        join = NestedLoopJoin(
            ctx,
            source(ctx, [(1, 0)], names=("l", "lx")),
            source(ctx, [(8, 0), (9, 0)], names=("r", "rx")),
            None,
        )
        assert len(list(join.rows(()))) == 2

    @pytest.mark.parametrize("build_left", [False, True])
    def test_hash_join_both_build_sides(self, ctx, build_left):
        left = source(ctx, [(1, 0), (2, 0), (2, 1)], names=("l", "lx"))
        right = source(ctx, [(2, 7), (3, 7)], names=("r", "rx"))
        join = HashJoin(ctx, left, right, [0], [0],
                        build_left=build_left)
        assert sorted(join.rows(())) == [(2, 0, 2, 7), (2, 1, 2, 7)]

    def test_hash_join_null_keys_never_match(self, ctx):
        left = source(ctx, [(None, 0)], names=("l", "lx"))
        right = source(ctx, [(None, 7)], names=("r", "rx"))
        join = HashJoin(ctx, left, right, [0], [0])
        assert list(join.rows(())) == []

    def test_merge_join(self, ctx):
        left = source(ctx, [(3, 0), (1, 0), (2, 0)], names=("l", "lx"))
        right = source(ctx, [(2, 7), (2, 8), (4, 9)], names=("r", "rx"))
        join = MergeJoin(ctx, left, right, 0, 0)
        assert sorted(join.rows(())) == [(2, 0, 2, 7), (2, 0, 2, 8)]

    def test_merge_join_skips_nulls(self, ctx):
        left = source(ctx, [(None, 0), (1, 0)], names=("l", "lx"))
        right = source(ctx, [(None, 7), (1, 7)], names=("r", "rx"))
        join = MergeJoin(ctx, left, right, 0, 0)
        assert list(join.rows(())) == [(1, 0, 1, 7)]

    def test_hash_join_spill_charged(self, ctx):
        big = [(i, "x" * 4) for i in range(150000)]
        join = HashJoin(
            ctx,
            source(ctx, [(1, 0)], names=("l", "lx")),
            source(ctx, big, names=("r", "rx")),
            [0], [0],
        )
        snap = ctx.metrics.snapshot()
        list(join.rows(()))
        assert snap.get("exec.spill_pages") > 0


class TestSortAndAggregate:
    def test_sort_rows_asc_desc(self, ctx):
        rows = [(2, "b"), (1, "c"), (2, "a")]
        out = sort_rows(ctx, list(rows), [(0, False), (1, True)], 2)
        assert out == [(1, "c"), (2, "b"), (2, "a")]

    def test_sort_none_first_ascending(self, ctx):
        out = sort_rows(ctx, [(1,), (None,), (0,)], [(0, False)], 1)
        assert out == [(None,), (0,), (1,)]

    def test_sort_none_last_descending(self, ctx):
        out = sort_rows(ctx, [(1,), (None,), (2,)], [(0, True)], 1)
        assert out == [(2,), (1,), (None,)]

    def test_sort_operator(self, ctx):
        op = Sort(ctx, source(ctx, [(3, 0), (1, 0)]), [(0, False)])
        assert list(op.rows(())) == [(1, 0), (3, 0)]

    def test_external_sort_spills(self, ctx):
        rows = [(i, i) for i in range(200000)]
        snap = ctx.metrics.snapshot()
        sort_rows(ctx, rows, [(0, True)], 2)
        assert snap.get("exec.external_sorts") == 1

    def test_group_aggregate_all_functions(self, ctx):
        child = source(ctx, [(1, 10.0), (1, 20.0), (2, 5.0)])
        group = ColumnRef(None, "a").bind(child.schema)
        calls = []
        for func in ("SUM", "AVG", "COUNT", "MIN", "MAX"):
            call = AggCall(func, ColumnRef(None, "b"))
            call.bind(child.schema)
            calls.append(call)
        op = GroupAggregate(ctx, child, [group], calls)
        rows = sorted(op.rows(()))
        assert rows[0] == (1, 30.0, 15.0, 2, 10.0, 20.0)
        assert rows[1] == (2, 5.0, 5.0, 1, 5.0, 5.0)

    def test_aggregate_skips_nulls(self, ctx):
        child = source(ctx, [(1, None), (1, 4.0)])
        call = AggCall("AVG", ColumnRef(None, "b"))
        call.bind(child.schema)
        count = AggCall("COUNT", ColumnRef(None, "b"))
        count.bind(child.schema)
        star = AggCall("COUNT", None)
        op = GroupAggregate(ctx, child, [], [call, count, star])
        assert list(op.rows(())) == [(4.0, 1, 2)]

    def test_aggregate_distinct(self, ctx):
        child = source(ctx, [(1, 5.0), (1, 5.0), (1, 7.0)])
        call = AggCall("SUM", ColumnRef(None, "b"), distinct=True)
        call.bind(child.schema)
        op = GroupAggregate(ctx, child, [], [call])
        assert list(op.rows(())) == [(12.0,)]

    def test_empty_group_by_on_empty_input_yields_one_row(self, ctx):
        child = source(ctx, [])
        call = AggCall("SUM", ColumnRef(None, "b"))
        call.bind(child.schema)
        op = GroupAggregate(ctx, child, [], [call])
        assert list(op.rows(())) == [(None,)]

    def test_grouped_empty_input_yields_nothing(self, ctx):
        child = source(ctx, [])
        group = ColumnRef(None, "a").bind(child.schema)
        op = GroupAggregate(ctx, child, [group],
                            [AggCall("COUNT", None)])
        assert list(op.rows(())) == []

    def test_group_output_order_is_first_seen(self, ctx):
        child = source(ctx, [(2, 0.0), (1, 0.0), (2, 1.0)])
        group = ColumnRef(None, "a").bind(child.schema)
        op = GroupAggregate(ctx, child, [group],
                            [AggCall("COUNT", None)])
        assert [row[0] for row in op.rows(())] == [2, 1]
