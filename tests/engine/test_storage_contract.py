"""Backend-conformance suite: every StorageBackend must agree on semantics.

Parametrized over the heap and LSM backends: DML visibility, point
reads, scans, crash-recovery digest identity, iterator stability under
concurrent-on-the-clock compaction, and the slot-restoration API that
ARIES replay depends on.  The LSM runs with a deliberately tiny
memtable so flush and compaction actually occur inside each test.
"""

import itertools

import pytest

from repro.engine.database import Database
from repro.engine.errors import ExecutionError, PlanError
from repro.engine.schema import Column, TableSchema
from repro.engine.types import SqlType
from repro.engine.wal import DurableStore
from repro.sim.params import SimParams

BACKENDS = ("heap", "lsm")


def _params() -> SimParams:
    params = SimParams()
    # Small enough that a few hundred rows force several memtable
    # flushes and L0 compactions (heap ignores both knobs).
    params.lsm_memtable_bytes = 2048
    params.lsm_l0_compaction_trigger = 2
    return params


def _schema(name: str = "t") -> TableSchema:
    return TableSchema(
        name,
        [Column("id", SqlType.integer()), Column("v", SqlType.char(8))],
        ["id"],
    )


def _fresh(storage: str) -> Database:
    db = Database(params=_params(), storage=storage)
    db.create_table(_schema())
    return db


def _mixed_dml(table, n: int = 300) -> dict[int, tuple]:
    """Deterministic insert/update/delete mix; returns rowid -> row."""
    model: dict[int, tuple] = {}
    for i in range(n):
        rowid = table.insert((i, f"v{i}"))
        model[rowid] = (i, f"v{i}")
    for rowid in range(0, n, 7):
        table.update(rowid, (rowid + 10_000, f"u{rowid}"))
        model[rowid] = (rowid + 10_000, f"u{rowid}")
    for rowid in range(3, n, 11):
        table.delete(rowid)
        del model[rowid]
    return model


@pytest.mark.parametrize("storage", BACKENDS)
class TestDmlSemantics:
    def test_insert_fetch_scan_roundtrip(self, storage):
        db = _fresh(storage)
        table = db.catalog.table("t")
        model = _mixed_dml(table)
        assert table.row_count == len(model)
        assert dict(table.scan()) == model
        # scan yields live rows in rowid order on both backends
        rowids = [rowid for rowid, _row in table.scan()]
        assert rowids == sorted(model)
        for rowid, row in model.items():
            assert table.fetch_row(rowid) == row

    def test_dead_rowids_raise(self, storage):
        db = _fresh(storage)
        table = db.catalog.table("t")
        rowid = table.insert((1, "one"))
        table.delete(rowid)
        with pytest.raises(ExecutionError):
            table.fetch_row(rowid)
        with pytest.raises(ExecutionError):
            table.delete(rowid)
        with pytest.raises(ExecutionError):
            table.update(rowid, (2, "two"))

    def test_lsm_actually_flushed_and_compacted(self, storage):
        db = _fresh(storage)
        _mixed_dml(db.catalog.table("t"))
        flushes = db.metrics.get("lsm.flushes")
        compactions = db.metrics.get("lsm.compactions")
        if storage == "lsm":
            assert flushes > 0 and compactions > 0
            assert db.metrics.get("disk.seq_writes") > 0
        else:
            assert flushes == 0 and compactions == 0
            assert db.metrics.get("disk.seq_writes") == 0

    def test_content_digest_matches_heap_reference(self, storage):
        db = _fresh(storage)
        _mixed_dml(db.catalog.table("t"))
        reference = _fresh("heap")
        _mixed_dml(reference.catalog.table("t"))
        assert db.content_digest() == reference.content_digest()


@pytest.mark.parametrize("storage", BACKENDS)
class TestCrashRecovery:
    def _durable(self, storage):
        params = _params()
        store = DurableStore(params)
        db = Database(params=params, durability="wal", store=store,
                      storage=storage)
        db.create_table(_schema())
        return db, store

    def test_crash_recovers_digest_identical(self, storage):
        db, store = self._durable(storage)
        model = _mixed_dml(db.catalog.table("t"))
        reference = db.content_digest()
        db.crash()
        recovered, report = Database.open(store)
        assert recovered.storage == storage
        assert recovered.content_digest() == reference
        assert dict(recovered.catalog.table("t").scan()) == model

    def test_checkpoint_then_more_work_recovers(self, storage):
        db, store = self._durable(storage)
        table = db.catalog.table("t")
        for i in range(120):
            table.insert((i, f"v{i}"))
        db.wal.checkpoint()
        for i in range(120, 200):
            table.insert((i, f"v{i}"))
        table.delete(5)
        reference = db.content_digest()
        db.crash()
        recovered, report = Database.open(store)
        assert recovered.content_digest() == reference
        assert report.redo_applied >= 0  # recovery ran to completion


@pytest.mark.parametrize("storage", BACKENDS)
class TestIteratorStability:
    def test_scan_survives_on_clock_compaction(self, storage):
        db = _fresh(storage)
        table = db.catalog.table("t")
        for i in range(240):
            table.insert((i, f"v{i}"))
        snapshot = list(table.scan())
        it = table.scan()
        head = list(itertools.islice(it, 50))
        # Force the backend's maintenance mid-iteration: on the LSM a
        # flush lands a new L0 segment and (trigger=2) cascades into a
        # compaction that rewrites the very segments being iterated.
        if table.heap.self_charging:
            before = db.metrics.get("lsm.compactions")
            table.heap.flush_memtable()
            table.heap.restore_slot(10_000, (10_000, "late"))
            table.heap.flush_memtable()
            assert db.metrics.get("lsm.compactions") > before
        assert head + list(it) == snapshot


@pytest.mark.parametrize("storage", BACKENDS)
class TestSlotApi:
    def test_restore_slot_into_occupied_slot_raises(self, storage):
        db = _fresh(storage)
        heap = db.catalog.table("t").heap
        rowid = heap.append((1, "one"))
        with pytest.raises(ExecutionError):
            heap.restore_slot(rowid, (2, "two"))

    def test_put_slot_unknown_rowid_raises(self, storage):
        db = _fresh(storage)
        heap = db.catalog.table("t").heap
        heap.append((1, "one"))
        with pytest.raises(ExecutionError):
            heap.put_slot(99, (2, "two"))

    def test_put_slot_tombstone_and_revive(self, storage):
        db = _fresh(storage)
        heap = db.catalog.table("t").heap
        rowid = heap.append((1, "one"))
        heap.put_slot(rowid, None)
        assert heap.row_count == 0
        assert heap.get(rowid) is None
        heap.put_slot(rowid, (2, "two"))
        assert heap.row_count == 1
        assert heap.get(rowid) == (2, "two")

    def test_snapshot_load_slots_roundtrip(self, storage):
        db = _fresh(storage)
        table = db.catalog.table("t")
        model = _mixed_dml(table, n=150)
        slots = table.heap.snapshot_slots()
        other = _fresh(storage)
        other.catalog.table("t").heap.load_slots(slots)
        assert dict(other.catalog.table("t").heap.scan()) == model
        assert other.catalog.table("t").row_count == len(model)


class TestStorageSelection:
    def test_unknown_storage_rejected(self):
        with pytest.raises(PlanError):
            Database(params=SimParams(), storage="btree")

    def test_heap_is_the_default(self):
        assert Database(params=SimParams()).storage == "heap"
