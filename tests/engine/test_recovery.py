"""ARIES-lite recovery: crash at *every* durability boundary + invariants.

The micro workload below is a deterministic sequence of committed
transaction groups (each group = one explicit engine transaction whose
COMMIT record carries the group index as its journal payload), with
manual checkpoints between some groups.  That structure makes the
correctness assertion exact at every crash point: the recovered
database must equal the reference state after the *last durably
committed group* — computed independently on a durability-off engine.
"""

import pytest

from repro.engine.database import Database
from repro.engine.errors import SimulatedCrash
from repro.engine.schema import Column, TableSchema
from repro.engine.types import SqlType
from repro.engine.wal import DurableStore
from repro.sim.faults import FaultInjector, FaultProfile
from repro.sim.params import SimParams


def _micro_params() -> SimParams:
    params = SimParams()
    params.wal_buffer_records = 4
    params.wal_segment_records = 16
    params.wal_checkpoint_every_records = None
    return params


_SCHEMA = TableSchema(
    "t",
    [Column("id", SqlType.integer()), Column("v", SqlType.char(8))],
    ["id"],
)


def _group_ddl(db: Database) -> None:
    db.create_table(_SCHEMA)


def _group_insert_a(db: Database) -> None:
    table = db.catalog.table("t")
    for i in range(6):
        table.insert((i, f"a{i}"))


def _group_mutate(db: Database) -> None:
    table = db.catalog.table("t")
    table.update(0, (0, "mutated"))
    table.delete(1)
    table.insert((100, "after"))


def _group_index(db: Database) -> None:
    db.create_index("idx_t_v", "t", ["v"])


def _group_insert_b(db: Database) -> None:
    table = db.catalog.table("t")
    for i in range(200, 206):
        table.insert((i, f"b{i}"))


#: (group, checkpoint-after?) — two checkpoints so crashes land before,
#: inside and after the fuzzy-checkpoint protocol
_GROUPS = [
    (_group_ddl, False),
    (_group_insert_a, True),
    (_group_mutate, False),
    (_group_index, True),
    (_group_insert_b, False),
]


def _run_micro(db: Database) -> None:
    for index, (group, checkpoint_after) in enumerate(_GROUPS):
        db.begin()
        group(db)
        db.commit(journal=str(index).encode())
        if checkpoint_after:
            db.checkpoint()


def _reference_digests() -> list[str]:
    """Digest after 0..len(_GROUPS) groups on a durability-off engine."""
    db = Database(params=_micro_params())
    digests = [db.content_digest()]
    for group, _ in _GROUPS:
        group(db)
        digests.append(db.content_digest())
    return digests


def _attach(db: Database, k: int | None) -> FaultInjector:
    profile = FaultProfile(name="micro", seed=7,
                           crash_at_durability_op=k)
    injector = FaultInjector(profile, db.clock, db.metrics)
    db.wal.faults = injector
    db.disk.faults = injector
    return injector


def _census() -> int:
    params = _micro_params()
    db = Database(params=params, durability="wal",
                  store=DurableStore(params))
    injector = _attach(db, None)
    _run_micro(db)
    return injector.durability_ops


_BOUNDARIES = _census()
_REFERENCE = _reference_digests()


def _committed_groups(report) -> int:
    if report.app_journal is None:
        return 0
    return int(report.app_journal.decode()) + 1


class TestCrashAtEveryBoundary:
    @pytest.mark.parametrize("k", range(1, _BOUNDARIES + 1))
    def test_recovers_to_last_committed_group(self, k):
        params = _micro_params()
        store = DurableStore(params)
        db = Database(params=params, durability="wal", store=store)
        _attach(db, k)
        with pytest.raises(SimulatedCrash):
            _run_micro(db)
        assert store.frozen
        recovered, report = Database.open(store)
        committed = _committed_groups(report)
        assert recovered.content_digest() == _REFERENCE[committed]

    @pytest.mark.parametrize("k", range(1, _BOUNDARIES + 1, 7))
    def test_torn_tail_recovers_identically(self, k):
        params = _micro_params()
        store = DurableStore(params)
        db = Database(params=params, durability="wal", store=store)
        profile = FaultProfile(name="micro-torn", seed=7,
                               crash_at_durability_op=k,
                               torn_write_prob=1.0)
        injector = FaultInjector(profile, db.clock, db.metrics)
        db.wal.faults = injector
        db.disk.faults = injector
        with pytest.raises(SimulatedCrash):
            _run_micro(db)
        recovered, report = Database.open(store)
        committed = _committed_groups(report)
        assert recovered.content_digest() == _REFERENCE[committed]

    def test_completed_run_survives_crash_after_the_fact(self):
        params = _micro_params()
        store = DurableStore(params)
        db = Database(params=params, durability="wal", store=store)
        _run_micro(db)
        db.crash()
        recovered, report = Database.open(store)
        assert recovered.content_digest() == _REFERENCE[-1]
        assert report.loser_txns == 0


class TestRedoIdempotency:
    @pytest.mark.parametrize("k", range(1, _BOUNDARIES + 1, 5))
    def test_recover_twice_equals_recover_once(self, k):
        params = _micro_params()
        store = DurableStore(params)
        db = Database(params=params, durability="wal", store=store)
        _attach(db, k)
        with pytest.raises(SimulatedCrash):
            _run_micro(db)
        once, report1 = Database.open(store)
        digest_once = once.content_digest()
        # crash again without doing any work: the post-recovery
        # checkpoint must make the second pass a no-op replay
        twice, report2 = Database.open(once.crash())
        assert twice.content_digest() == digest_once
        assert report2.redo_applied == 0
        assert report2.undo_applied == 0
        assert report2.loser_txns == 0


class TestParallelAfterRecovery:
    def test_degree2_query_matches_serial_reference(self):
        params = _micro_params()
        store = DurableStore(params)
        db = Database(params=params, durability="wal", store=store)
        _attach(db, _BOUNDARIES - 2)
        with pytest.raises(SimulatedCrash):
            _run_micro(db)
        recovered, _ = Database.open(store)
        serial_rows = recovered.execute(
            "SELECT v, COUNT(*) FROM t GROUP BY v ORDER BY v").rows
        recovered.set_degree(2)
        recovered.prepartition()
        parallel_rows = recovered.execute(
            "SELECT v, COUNT(*) FROM t GROUP BY v ORDER BY v").rows
        assert parallel_rows == serial_rows


class TestDurabilityOffIdentity:
    def test_default_engine_is_untouched(self):
        """durability='off' must be byte-identical to the implicit
        default: same simulated clock, same metrics, no wal/recovery
        counters anywhere."""

        def drive(db: Database) -> None:
            db.create_table(_SCHEMA)
            table = db.catalog.table("t")
            for i in range(25):
                table.insert((i, f"v{i}"))
            table.update(3, (3, "x"))
            table.delete(4)
            db.execute("SELECT COUNT(*) FROM t")

        plain = Database(params=SimParams())
        explicit = Database(params=SimParams(), durability="off")
        drive(plain)
        drive(explicit)
        assert plain.wal is None and explicit.wal is None
        assert explicit.clock.now == plain.clock.now
        assert dict(explicit.metrics.all()) == dict(plain.metrics.all())
        forbidden = [name for name in plain.metrics.all()
                     if name.startswith(("wal.", "recovery.", "disk.fsync"))]
        assert forbidden == []
