"""Parallel query execution: lanes, exchanges, correctness, identity."""

import pytest

from repro.core.powertest import run_power_test
from repro.engine import Column, Database, SqlType, TableSchema
from repro.engine.parallel import LaneSet
from repro.sim.clock import LaneSink, SimulatedClock
from repro.sim.params import SimParams
from repro.tpcd.loader import load_original
from repro.tpcd.queries import build_queries, run_query
from tests.conftest import SF


def _normalize(rows):
    """Order-independent, float-tolerant row-set comparison key."""
    rounded = [
        tuple(round(v, 6) if isinstance(v, float) else v for v in row)
        for row in rows
    ]
    return sorted(rounded, key=repr)


# -- the clock's charge redirection ------------------------------------------


class TestChargeRedirection:
    def test_redirect_freezes_global_time(self):
        clock = SimulatedClock()
        clock.charge(1.0)
        sink = LaneSink()
        with clock.redirect(sink):
            clock.charge(0.25)
            clock.charge(0.5)
            # now is lane-local while redirected
            assert clock.now == pytest.approx(1.75)
        assert sink.seconds == pytest.approx(0.75)
        assert clock.now == pytest.approx(1.0)

    def test_nested_redirect_rejected(self):
        clock = SimulatedClock()
        with clock.redirect(LaneSink()):
            with pytest.raises(RuntimeError):
                with clock.redirect(LaneSink()):
                    pass

    def test_deadline_deferred_to_global_advance(self):
        clock = SimulatedClock()

        class Boom(Exception):
            pass

        clock.push_deadline(0.5, Boom)
        with clock.redirect(LaneSink()):
            clock.charge(10.0)  # far past the deadline, lane-local: no fire
        with pytest.raises(Boom):
            clock.charge(0.6)  # the barrier-style global advance fires it


class TestLaneSet:
    def test_barrier_charges_slowest_lane(self):
        clock = SimulatedClock()
        lanes = LaneSet(clock, 3)
        for index, cost in enumerate((0.2, 0.5, 0.1)):
            lanes.run(index, lambda c=cost: clock.charge(c))
        charged = lanes.barrier()
        assert charged == pytest.approx(0.5)
        assert clock.now == pytest.approx(0.5)

    def test_multi_phase_sums_per_phase_maxima(self):
        clock = SimulatedClock()
        lanes = LaneSet(clock, 2)
        lanes.run(0, lambda: clock.charge(0.4))
        lanes.run(1, lambda: clock.charge(0.1))
        lanes.barrier()  # phase 1: max = 0.4
        lanes.run(0, lambda: clock.charge(0.1))
        lanes.run(1, lambda: clock.charge(0.3))
        lanes.barrier()  # phase 2: max = 0.3
        assert clock.now == pytest.approx(0.7)
        assert lanes.lane_seconds() == pytest.approx([0.5, 0.4])

    def test_skew_is_max_over_mean(self):
        clock = SimulatedClock()
        lanes = LaneSet(clock, 2)
        lanes.run(0, lambda: clock.charge(0.9))
        lanes.run(1, lambda: clock.charge(0.3))
        lanes.barrier()
        assert lanes.skew() == pytest.approx(1.5)


# -- parallel plans against the serial reference -----------------------------


@pytest.fixture(scope="module")
def parallel_db(tpcd_data):
    db = load_original(tpcd_data, degree=4)
    db.prepartition("lineitem", "orders", "partsupp", "customer", "part")
    return db


class TestParallelCorrectness:
    def test_all_power_queries_match_serial(self, parallel_db,
                                            reference_results):
        specs = build_queries(SF)
        for number in sorted(specs):
            got = run_query(parallel_db, specs[number]).rows
            assert _normalize(got) == _normalize(
                reference_results[number]), f"Q{number} diverged"

    def test_two_phase_aggregate_functions(self, tpcd_data,
                                           reference_results):
        db = load_original(tpcd_data, degree=4)
        result = db.execute(
            "SELECT l_returnflag, COUNT(*), SUM(l_quantity), "
            "AVG(l_extendedprice), MIN(l_discount), MAX(l_tax) "
            "FROM lineitem GROUP BY l_returnflag"
        )
        serial = load_original(tpcd_data).execute(
            "SELECT l_returnflag, COUNT(*), SUM(l_quantity), "
            "AVG(l_extendedprice), MIN(l_discount), MAX(l_tax) "
            "FROM lineitem GROUP BY l_returnflag"
        )
        assert _normalize(result.rows) == _normalize(serial.rows)
        assert "PartialAggregate" in db.explain(
            "SELECT COUNT(*) FROM lineitem GROUP BY l_returnflag"
        )

    def test_global_aggregate_over_empty_selection(self, tpcd_data):
        db = load_original(tpcd_data, degree=4)
        result = db.execute(
            "SELECT COUNT(*), SUM(l_quantity) FROM lineitem "
            "WHERE l_quantity < -1"
        )
        assert result.rows == [(0, None)]

    def test_distinct_aggregate_stays_serial(self, tpcd_data):
        db = load_original(tpcd_data, degree=4)
        plan = db.explain(
            "SELECT COUNT(DISTINCT l_suppkey) FROM lineitem"
        )
        assert "PartialAggregate" not in plan

    def test_small_tables_stay_serial(self, tpcd_data):
        db = load_original(tpcd_data, degree=4)
        assert "Gather" not in db.explain("SELECT * FROM region")
        assert "Gather" not in db.explain("SELECT * FROM nation")

    def test_plan_shapes(self, parallel_db):
        scan = parallel_db.explain(
            "SELECT l_orderkey FROM lineitem WHERE l_quantity < 10"
        )
        assert "Gather(degree=4)" in scan
        assert "PartitionScan(lineitem p0/4" in scan
        join = parallel_db.explain(
            "SELECT o_orderkey FROM orders, lineitem "
            "WHERE o_orderkey = l_orderkey"
        )
        assert "ParallelHashJoin" in join


class TestJoinStrategies:
    JOIN_SQL = (
        "SELECT o_orderpriority, COUNT(*) FROM orders, lineitem "
        "WHERE o_orderkey = l_orderkey AND l_quantity < 30 "
        "GROUP BY o_orderpriority"
    )

    def test_broadcast_and_repartition_agree_with_serial(self, tpcd_data):
        serial = load_original(tpcd_data).execute(self.JOIN_SQL).rows
        broadcast_db = load_original(
            tpcd_data, params=SimParams(parallel_broadcast_rows=10**9),
            degree=4)
        repartition_db = load_original(
            tpcd_data, params=SimParams(parallel_broadcast_rows=0),
            degree=4)
        assert "ParallelHashJoin(broadcast" \
            in broadcast_db.explain(self.JOIN_SQL)
        assert "ParallelHashJoin(repartition" \
            in repartition_db.explain(self.JOIN_SQL)
        assert _normalize(broadcast_db.execute(self.JOIN_SQL).rows) \
            == _normalize(serial)
        assert _normalize(repartition_db.execute(self.JOIN_SQL).rows) \
            == _normalize(serial)

    def test_strategy_follows_build_cardinality(self, parallel_db):
        # orders (1,500 rows at this SF) is under the broadcast ceiling.
        plan = parallel_db.explain(self.JOIN_SQL)
        assert "ParallelHashJoin(broadcast" in plan


class TestSkew:
    def test_skewed_partition_key_erodes_speedup(self, tpcd_data):
        q6 = ("SELECT SUM(l_extendedprice * l_discount) FROM lineitem "
              "WHERE l_discount >= 0.02")
        balanced = load_original(tpcd_data, degree=4)
        balanced.prepartition("lineitem")
        skewed = load_original(tpcd_data, degree=4)
        # 3 distinct flag values hashed over 4 lanes: one lane idles
        # and another carries a double share.
        skewed.set_partition_column("lineitem", "l_returnflag")
        skewed.prepartition("lineitem")

        def elapsed(db):
            start = db.now
            rows = db.execute(q6).rows
            return db.now - start, rows

        balanced_s, balanced_rows = elapsed(balanced)
        skewed_s, skewed_rows = elapsed(skewed)
        assert _normalize(balanced_rows) == _normalize(skewed_rows)
        assert skewed_s > balanced_s


class TestDmlConsistency:
    def test_parallel_scan_sees_post_delete_state(self, tpcd_data):
        db = load_original(tpcd_data, degree=4)
        before = db.execute("SELECT COUNT(*) FROM lineitem").scalar()
        db.execute("DELETE FROM lineitem WHERE l_orderkey = 1")
        deleted = before - db.execute(
            "SELECT COUNT(*) FROM lineitem").scalar()
        assert deleted == len(
            db.execute("SELECT * FROM lineitem WHERE l_orderkey = 1").rows
        ) + deleted  # no rows with the key remain
        assert deleted > 0

    def test_timeout_still_fires_during_parallel_query(self, tpcd_data):
        db = load_original(tpcd_data, degree=4)
        db.prepartition("lineitem")
        specs = build_queries(SF)
        baseline = db.now
        run_query(db, specs[1])
        full_cost = db.now - baseline

        class Boom(Exception):
            pass

        db.clock.push_deadline(db.now + full_cost / 2, Boom)
        with pytest.raises(Boom):
            run_query(db, specs[1])


class TestTraceIntegration:
    def test_lane_spans_are_concurrent_siblings(self, tpcd_data):
        db = load_original(tpcd_data, degree=4)
        db.prepartition("lineitem")
        db.tracer.enable()
        db.execute("SELECT SUM(l_quantity) FROM lineitem")
        fragments = db.tracer.find("exec.fragment")
        assert fragments
        fragment = fragments[0]
        lanes = [c for c in fragment.children if c.name == "exec.lane"]
        assert len(lanes) == 4
        assert all(lane.attrs.get("parallel") for lane in lanes)
        # Lanes start at the same (frozen) global instant and overlap.
        assert len({lane.start_s for lane in lanes}) == 1
        # The fragment covers its slowest lane plus overhead.
        assert fragment.elapsed_s >= max(lane.elapsed_s for lane in lanes)
        assert fragment.attrs["skew"] >= 1.0
        assert fragment.attrs["rows"] > 0

    def test_profile_reports_per_lane_operators(self, tpcd_data):
        db = load_original(tpcd_data, degree=4)
        db.tracer.enable()
        db.execute("SELECT SUM(l_quantity) FROM lineitem")
        queries = db.tracer.find("db.query")
        profile = queries[-1].attrs["profile"]
        scans = [node for node in profile.walk()
                 if node.label.startswith("PartitionScan")]
        assert len(scans) == 4
        total = sum(node.rows_out for node in scans)
        assert total == db.catalog.table("lineitem").row_count


class TestDegreeOneIdentity:
    def test_power_test_is_tick_identical(self, tpcd_data):
        default = run_power_test(SF, data=tpcd_data,
                                 variants=("rdbms",))
        explicit = run_power_test(SF, data=tpcd_data,
                                  variants=("rdbms",), degree=1)
        assert default.times == explicit.times
        assert default.row_counts == explicit.row_counts

    def test_clock_and_page_metrics_identical(self, tpcd_data):
        specs = build_queries(SF)
        plain = load_original(tpcd_data)
        explicit = load_original(tpcd_data, degree=1)
        for number in sorted(specs):
            run_query(plain, specs[number])
            run_query(explicit, specs[number])
        assert plain.clock.now == explicit.clock.now
        assert plain.metrics.all() == explicit.metrics.all()


class TestDegreeKnob:
    def test_cli_exposes_degree(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["power", "--degree", "4", "--sf", "0.001"])
        assert args.degree == 4
        assert build_parser().parse_args(["power"]).degree == 1

    def test_power_test_speedup_at_degree_four(self, tpcd_data):
        serial = run_power_test(SF, data=tpcd_data, variants=("rdbms",))
        parallel = run_power_test(SF, data=tpcd_data, variants=("rdbms",),
                                  degree=4)
        for name in ("Q1", "Q6"):
            assert parallel.times["rdbms"][name] \
                < serial.times["rdbms"][name]

    def test_set_degree_validates(self, tpcd_data):
        from repro.engine.errors import PlanError

        db = load_original(tpcd_data)
        with pytest.raises(PlanError):
            db.set_degree(0)
        db.set_degree(4)
        assert "Gather" in db.explain("SELECT l_quantity FROM lineitem")
        db.set_degree(1)
        assert "Gather" not in db.explain("SELECT l_quantity FROM lineitem")
