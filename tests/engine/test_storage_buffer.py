import pytest

from repro.engine.buffer import BufferPool
from repro.engine.errors import ExecutionError
from repro.engine.schema import Column, TableSchema
from repro.engine.storage import HeapFile
from repro.engine.types import SqlType
from repro.sim.clock import SimulatedClock
from repro.sim.disk import DiskModel
from repro.sim.metrics import MetricsCollector


def _schema():
    return TableSchema("t", [
        Column("a", SqlType.integer()),
        Column("b", SqlType.char(20)),
    ])


class TestHeapFile:
    def test_append_and_fetch(self):
        heap = HeapFile(_schema(), 8192)
        rowid = heap.append((1, "x"))
        assert heap.fetch(rowid) == (1, "x")

    def test_rowids_sequential(self):
        heap = HeapFile(_schema(), 8192)
        assert [heap.append((i, "")) for i in range(3)] == [0, 1, 2]

    def test_delete_leaves_tombstone(self):
        heap = HeapFile(_schema(), 8192)
        for i in range(3):
            heap.append((i, ""))
        heap.delete(1)
        assert [row[0] for _id, row in heap.scan()] == [0, 2]
        assert heap.row_count == 2
        with pytest.raises(ExecutionError):
            heap.fetch(1)

    def test_double_delete_rejected(self):
        heap = HeapFile(_schema(), 8192)
        heap.append((1, ""))
        heap.delete(0)
        with pytest.raises(ExecutionError):
            heap.delete(0)

    def test_update(self):
        heap = HeapFile(_schema(), 8192)
        heap.append((1, "a"))
        heap.update(0, (2, "b"))
        assert heap.fetch(0) == (2, "b")

    def test_page_accounting(self):
        schema = _schema()  # row width 4+20+8 = 32 bytes
        heap = HeapFile(schema, 8192)
        assert heap.rows_per_page == 256
        for i in range(257):
            heap.append((i, ""))
        assert heap.page_count == 2
        assert heap.page_of(0) == 0
        assert heap.page_of(256) == 1

    def test_data_bytes_includes_tombstones(self):
        heap = HeapFile(_schema(), 8192)
        heap.append((1, ""))
        heap.append((2, ""))
        before = heap.data_bytes
        heap.delete(0)
        assert heap.data_bytes == before


def _pool(capacity=4):
    clock = SimulatedClock()
    metrics = MetricsCollector()
    disk = DiskModel(clock, metrics, 0.001, 0.01, 0.02)
    return BufferPool(capacity, disk, clock, metrics, 0.00001), clock, \
        metrics


class TestBufferPool:
    def test_miss_then_hit(self):
        pool, clock, metrics = _pool()
        assert pool.access("f", 0, sequential=True) is False
        assert pool.access("f", 0, sequential=True) is True
        assert metrics.get("buffer.hits") == 1
        assert metrics.get("buffer.misses") == 1

    def test_miss_charges_disk(self):
        pool, clock, _m = _pool()
        pool.access("f", 0, sequential=True)
        assert clock.now == pytest.approx(0.001)
        pool.access("f", 1, sequential=False)
        assert clock.now == pytest.approx(0.011)

    def test_hit_is_cheap(self):
        pool, clock, _m = _pool()
        pool.access("f", 0, sequential=True)
        before = clock.now
        pool.access("f", 0, sequential=True)
        assert clock.now - before == pytest.approx(0.00001)

    def test_lru_eviction(self):
        pool, _c, metrics = _pool(capacity=2)
        pool.access("f", 0, True)
        pool.access("f", 1, True)
        pool.access("f", 0, True)  # 0 now most recent
        pool.access("f", 2, True)  # evicts 1
        assert pool.access("f", 0, True) is True
        assert pool.access("f", 1, True) is False

    def test_fresh_write_skips_read(self):
        pool, clock, _m = _pool()
        pool.write("tmp", 0, fresh=True)
        assert clock.now == pytest.approx(0.02)  # write only

    def test_non_resident_write_pays_read_modify_write(self):
        pool, clock, _m = _pool()
        pool.write("f", 0)
        assert clock.now == pytest.approx(0.01 + 0.02)

    def test_invalidate_file(self):
        pool, _c, _m = _pool()
        pool.access("f", 0, True)
        pool.access("g", 0, True)
        pool.invalidate_file("f")
        assert pool.access("g", 0, True) is True
        assert pool.access("f", 0, True) is False

    def test_resize_shrinks(self):
        pool, _c, _m = _pool(capacity=4)
        for page in range(4):
            pool.access("f", page, True)
        pool.resize(2)
        assert pool.resident_pages == 2
        with pytest.raises(ValueError):
            pool.resize(0)

    def test_capacity_validation(self):
        clock = SimulatedClock()
        metrics = MetricsCollector()
        disk = DiskModel(clock, metrics, 1, 1, 1)
        with pytest.raises(ValueError):
            BufferPool(0, disk, clock, metrics, 0.1)
