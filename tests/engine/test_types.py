import datetime

import pytest

from repro.engine.errors import TypeError_
from repro.engine.types import SqlType, TypeKind


class TestByteWidths:
    def test_integer_is_four_bytes(self):
        assert SqlType.integer().byte_width == 4

    def test_decimal_is_eight_bytes(self):
        assert SqlType.decimal().byte_width == 8

    def test_char_width_is_declared_length(self):
        assert SqlType.char(18).byte_width == 18

    def test_varchar_assumes_half_full(self):
        assert SqlType.varchar(100).byte_width == 52

    def test_date_is_four_bytes(self):
        assert SqlType.date().byte_width == 4

    def test_sap_string_key_vs_integer_key(self):
        """The paper's index-inflation root cause in one assertion."""
        assert SqlType.char(16).byte_width == 4 * SqlType.integer().byte_width


class TestValidation:
    def test_none_passes_every_type(self):
        for sql_type in (SqlType.integer(), SqlType.char(3),
                         SqlType.decimal(), SqlType.date()):
            assert sql_type.validate(None) is None

    def test_integer_accepts_int(self):
        assert SqlType.integer().validate(42) == 42

    def test_integer_rejects_bool(self):
        with pytest.raises(TypeError_):
            SqlType.integer().validate(True)

    def test_integer_rejects_string(self):
        with pytest.raises(TypeError_):
            SqlType.integer().validate("42")

    def test_decimal_coerces_int_to_float(self):
        value = SqlType.decimal().validate(5)
        assert value == 5.0 and isinstance(value, float)

    def test_char_length_enforced(self):
        with pytest.raises(TypeError_):
            SqlType.char(3).validate("abcd")

    def test_char_accepts_shorter(self):
        assert SqlType.char(5).validate("ab") == "ab"

    def test_varchar_length_enforced(self):
        with pytest.raises(TypeError_):
            SqlType.varchar(2).validate("abc")

    def test_date_accepts_date(self):
        d = datetime.date(1995, 6, 17)
        assert SqlType.date().validate(d) == d

    def test_date_parses_iso_string(self):
        assert SqlType.date().validate("1995-06-17") == \
            datetime.date(1995, 6, 17)

    def test_date_rejects_int(self):
        with pytest.raises(TypeError_):
            SqlType.date().validate(1995)

    def test_str_rendering(self):
        assert str(SqlType.char(10)) == "CHAR(10)"
        assert str(SqlType.decimal(15, 2)) == "DECIMAL(15,2)"
        assert str(SqlType.integer()) == "INTEGER"

    def test_kind_enum(self):
        assert SqlType.varchar(5).kind is TypeKind.VARCHAR
