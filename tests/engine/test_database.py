"""End-to-end engine tests through the public Database facade."""

import datetime

import pytest

from repro.engine import Column, Database, SqlType, TableSchema
from repro.engine.errors import (
    CatalogError,
    ConstraintError,
    PlanError,
    SqlSyntaxError,
)


@pytest.fixture()
def db():
    database = Database()
    database.create_table(TableSchema("emp", [
        Column("id", SqlType.integer(), nullable=False),
        Column("name", SqlType.varchar(20)),
        Column("dept", SqlType.integer()),
        Column("salary", SqlType.decimal()),
        Column("hired", SqlType.date()),
    ], primary_key=["id"]))
    database.create_table(TableSchema("dept", [
        Column("id", SqlType.integer(), nullable=False),
        Column("dname", SqlType.varchar(20)),
    ], primary_key=["id"]))
    database.execute("INSERT INTO dept VALUES (1, 'eng'), (2, 'sales')")
    for i in range(20):
        database.execute(
            "INSERT INTO emp VALUES (?, ?, ?, ?, ?)",
            (i, f"e{i:02d}", 1 + i % 2, 1000.0 + 10 * i,
             datetime.date(1995, 1, 1 + i)),
        )
    database.analyze()
    return database


class TestBasicQueries:
    def test_projection(self, db):
        result = db.execute("SELECT name FROM emp WHERE id = 3")
        assert result.rows == [("e03",)]
        assert result.columns == ["name"]

    def test_star(self, db):
        result = db.execute("SELECT * FROM dept")
        assert len(result.rows[0]) == 2

    def test_expression_projection(self, db):
        result = db.execute("SELECT salary * 2 FROM emp WHERE id = 0")
        assert result.rows == [(2000.0,)]

    def test_order_by_desc_limit(self, db):
        result = db.execute(
            "SELECT name FROM emp ORDER BY salary DESC LIMIT 3"
        )
        assert result.rows == [("e19",), ("e18",), ("e17",)]

    def test_order_by_expression(self, db):
        result = db.execute(
            "SELECT name FROM emp ORDER BY salary * -1 LIMIT 1"
        )
        assert result.rows == [("e19",)]

    def test_order_by_alias(self, db):
        result = db.execute(
            "SELECT salary * 2 AS pay, name FROM emp "
            "ORDER BY pay DESC LIMIT 1"
        )
        assert result.rows[0][1] == "e19"

    def test_distinct(self, db):
        result = db.execute("SELECT DISTINCT dept FROM emp")
        assert sorted(result.rows) == [(1,), (2,)]

    def test_scalar_helper(self, db):
        assert db.execute("SELECT COUNT(*) FROM emp").scalar() == 20

    def test_empty_result_scalar(self, db):
        assert db.execute(
            "SELECT name FROM emp WHERE id = 999").scalar() is None


class TestJoins:
    def test_comma_join(self, db):
        result = db.execute(
            "SELECT name, dname FROM emp, dept "
            "WHERE dept = dept.id AND emp.id = 4"
        )
        assert result.rows == [("e04", "eng")]

    def test_ansi_join(self, db):
        result = db.execute(
            "SELECT name, dname FROM emp JOIN dept ON emp.dept = dept.id "
            "WHERE emp.id = 5"
        )
        assert result.rows == [("e05", "sales")]

    def test_left_outer_join(self, db):
        db.execute("INSERT INTO emp VALUES (99, 'orphan', 7, 1.0, NULL)")
        result = db.execute(
            "SELECT name, dname FROM emp LEFT JOIN dept "
            "ON emp.dept = dept.id WHERE emp.id = 99"
        )
        assert result.rows == [("orphan", None)]

    def test_self_join_with_aliases(self, db):
        result = db.execute(
            "SELECT a.name, b.name FROM emp a, emp b "
            "WHERE a.id = 1 AND b.id = a.id + 1"
        )
        assert result.rows == [("e01", "e02")]

    def test_three_way_join(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM emp a, emp b, dept "
            "WHERE a.dept = dept.id AND b.dept = dept.id AND a.id = b.id"
        )
        assert result.scalar() == 20

    def test_cross_join(self, db):
        assert db.execute(
            "SELECT COUNT(*) FROM emp, dept").scalar() == 40


class TestAggregation:
    def test_group_by(self, db):
        result = db.execute(
            "SELECT dept, COUNT(*), SUM(salary), AVG(salary), "
            "MIN(salary), MAX(salary) FROM emp GROUP BY dept "
            "ORDER BY dept"
        )
        eng = result.rows[0]
        assert eng[0] == 1 and eng[1] == 10
        assert eng[4] == 1000.0 and eng[5] == 1180.0

    def test_global_aggregate(self, db):
        assert db.execute("SELECT SUM(salary) FROM emp").scalar() == \
            sum(1000.0 + 10 * i for i in range(20))

    def test_global_aggregate_on_empty_input(self, db):
        result = db.execute("SELECT SUM(salary), COUNT(*) FROM emp "
                            "WHERE id > 999")
        assert result.rows == [(None, 0)]

    def test_group_by_expression(self, db):
        result = db.execute(
            "SELECT EXTRACT(MONTH FROM hired), COUNT(*) FROM emp "
            "GROUP BY EXTRACT(MONTH FROM hired)"
        )
        assert result.rows == [(1, 20)]

    def test_having(self, db):
        result = db.execute(
            "SELECT dept, COUNT(*) FROM emp GROUP BY dept "
            "HAVING SUM(salary) > 10950"
        )
        assert result.rows == [(2, 10)]

    def test_aggregate_arithmetic(self, db):
        result = db.execute(
            "SELECT SUM(salary * 2) / COUNT(*) FROM emp"
        )
        assert result.scalar() == pytest.approx(2190.0)

    def test_count_distinct(self, db):
        assert db.execute(
            "SELECT COUNT(DISTINCT dept) FROM emp").scalar() == 2

    def test_case_in_aggregate(self, db):
        result = db.execute(
            "SELECT SUM(CASE WHEN dept = 1 THEN 1 ELSE 0 END) FROM emp"
        )
        assert result.scalar() == 10

    def test_ungrouped_column_rejected(self, db):
        with pytest.raises(PlanError):
            db.execute("SELECT name, COUNT(*) FROM emp GROUP BY dept")

    def test_having_without_aggregate_rejected(self, db):
        with pytest.raises(PlanError):
            db.execute("SELECT name FROM emp HAVING name = 'x'")


class TestSubqueries:
    def test_uncorrelated_scalar(self, db):
        result = db.execute(
            "SELECT name FROM emp WHERE salary = (SELECT MAX(salary) "
            "FROM emp)"
        )
        assert result.rows == [("e19",)]

    def test_correlated_scalar(self, db):
        result = db.execute(
            "SELECT e.name FROM emp e WHERE e.salary > "
            "(SELECT AVG(salary) + 80 FROM emp d WHERE d.dept = e.dept)"
        )
        assert result.rows == [("e18",), ("e19",)]

    def test_exists(self, db):
        result = db.execute(
            "SELECT dname FROM dept d WHERE EXISTS "
            "(SELECT * FROM emp WHERE emp.dept = d.id AND salary > 1185)"
        )
        assert result.rows == [("sales",)]

    def test_not_exists(self, db):
        result = db.execute(
            "SELECT dname FROM dept d WHERE NOT EXISTS "
            "(SELECT * FROM emp WHERE emp.dept = d.id)"
        )
        assert result.rows == []

    def test_in_subquery(self, db):
        result = db.execute(
            "SELECT dname FROM dept WHERE id IN "
            "(SELECT dept FROM emp WHERE salary > 1185)"
        )
        assert result.rows == [("sales",)]

    def test_not_in_subquery(self, db):
        result = db.execute(
            "SELECT dname FROM dept WHERE id NOT IN "
            "(SELECT dept FROM emp WHERE salary > 1185)"
        )
        assert result.rows == [("eng",)]

    def test_scalar_subquery_in_having(self, db):
        result = db.execute(
            "SELECT dept, SUM(salary) FROM emp GROUP BY dept "
            "HAVING SUM(salary) > (SELECT SUM(salary) * 0.5 FROM emp)"
        )
        assert result.rows == [(2, 11000.0)]


class TestDml:
    def test_insert_with_columns(self, db):
        db.execute("INSERT INTO emp (id, name) VALUES (50, 'new')")
        row = db.execute("SELECT name, salary FROM emp WHERE id = 50")
        assert row.rows == [("new", None)]

    def test_primary_key_enforced(self, db):
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO emp VALUES (1, 'dup', 1, 1.0, NULL)")

    def test_delete_by_key_uses_index(self, db):
        snap = db.metrics.snapshot()
        deleted = db.execute("DELETE FROM emp WHERE id = 3").scalar()
        assert deleted == 1
        assert snap.get("table.emp.tuples_scanned") == 0

    def test_delete_with_predicate(self, db):
        deleted = db.execute(
            "DELETE FROM emp WHERE salary >= 1150").scalar()
        assert deleted == 5
        assert db.execute("SELECT COUNT(*) FROM emp").scalar() == 15

    def test_update(self, db):
        db.execute("UPDATE emp SET salary = salary + 100 WHERE dept = 1")
        assert db.execute(
            "SELECT MIN(salary) FROM emp WHERE dept = 1").scalar() == 1100.0

    def test_update_maintains_index(self, db):
        db.execute("UPDATE emp SET id = 500 WHERE id = 0")
        assert db.execute(
            "SELECT name FROM emp WHERE id = 500").scalar() == "e00"


class TestPreparedStatements:
    def test_reuse_with_different_params(self, db):
        stmt = db.prepare("SELECT name FROM emp WHERE id = ?")
        assert stmt.execute((1,)).rows == [("e01",)]
        assert stmt.execute((2,)).rows == [("e02",)]
        assert stmt.executions == 2

    def test_planned_once(self, db):
        before = db.metrics.get("db.plans")
        stmt = db.prepare("SELECT name FROM emp WHERE id = ?")
        stmt.execute((1,))
        stmt.execute((2,))
        assert db.metrics.get("db.plans") == before + 1

    def test_prepared_dml(self, db):
        stmt = db.prepare("DELETE FROM emp WHERE id = ?")
        assert stmt.execute((1,)).scalar() == 1
        assert stmt.execute((1,)).scalar() == 0


class TestViews:
    def test_view_query(self, db):
        db.create_view("rich", "SELECT name, salary FROM emp "
                               "WHERE salary > 1150")
        result = db.execute("SELECT COUNT(*) FROM rich")
        assert result.scalar() == 4

    def test_view_join(self, db):
        db.create_view("emp_dept",
                       "SELECT name, dname FROM emp, dept "
                       "WHERE emp.dept = dept.id")
        result = db.execute(
            "SELECT COUNT(*) FROM emp_dept WHERE dname = 'eng'"
        )
        assert result.scalar() == 10

    def test_view_reusable_after_query(self, db):
        db.create_view("v", "SELECT id FROM emp")
        assert db.execute("SELECT COUNT(*) FROM v").scalar() == 20
        assert db.execute("SELECT COUNT(*) FROM v").scalar() == 20

    def test_drop_view(self, db):
        db.create_view("v", "SELECT id FROM emp")
        db.drop_view("v")
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM v")


class TestCatalogErrors:
    def test_unknown_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM nope")

    def test_duplicate_table(self, db):
        with pytest.raises(CatalogError):
            db.create_table(TableSchema("emp", [
                Column("x", SqlType.integer())
            ]))

    def test_syntax_error(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("SELEKT * FROM emp")

    def test_explain_names_operators(self, db):
        plan = db.explain("SELECT name FROM emp WHERE id = 1")
        # At this tiny scale either access path is legitimate; the
        # plan-quality assertions live in test_planner.py.
        assert "Scan(emp" in plan


class TestClockAdvances:
    def test_queries_charge_time(self, db):
        before = db.now
        db.execute("SELECT COUNT(*) FROM emp, dept "
                   "WHERE emp.dept = dept.id")
        assert db.now > before

    def test_deterministic_replay(self):
        def run():
            database = Database()
            database.create_table(TableSchema("t", [
                Column("a", SqlType.integer())
            ], primary_key=["a"]))
            for i in range(50):
                database.execute("INSERT INTO t VALUES (?)", (i,))
            database.analyze()
            database.execute("SELECT SUM(a) FROM t WHERE a > 10")
            return database.now

        assert run() == run()
