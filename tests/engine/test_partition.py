"""Partitioned heap overlay: determinism, tombstones, page accounting."""

import pytest

from repro.engine import Column, Database, SqlType, TableSchema
from repro.engine.errors import PlanError
from repro.engine.parallel import (
    PartitionManager,
    PartitionSpec,
    PartitionedHeap,
    stable_hash,
)


def make_db(rows=200):
    db = Database()
    db.create_table(TableSchema("t", [
        Column("id", SqlType.integer(), nullable=False),
        Column("grp", SqlType.varchar(4)),
        Column("val", SqlType.decimal()),
    ], primary_key=["id"]))
    for i in range(rows):
        db.execute("INSERT INTO t VALUES (?, ?, ?)",
                   (i, f"g{i % 3}", float(i)))
    db.analyze()
    return db


class TestStableHash:
    def test_deterministic_across_calls(self):
        for value in (0, 17, -5, "ACME", 3.25, None):
            assert stable_hash(value) == stable_hash(value)

    def test_known_values_pinned(self):
        # Cross-run / cross-process determinism: these are CRC-32 of
        # the canonical encodings and must never drift.
        assert stable_hash(1) == 2212294583
        assert stable_hash("a") == 3904355907
        assert stable_hash(None) == 3721628270

    def test_seed_changes_assignment(self):
        values = list(range(100))
        a = [stable_hash(v, 0) % 4 for v in values]
        b = [stable_hash(v, 1) % 4 for v in values]
        assert a != b


class TestPartitionSpec:
    def test_rejects_degree_below_two(self):
        with pytest.raises(PlanError):
            PartitionSpec(column="id", degree=1)

    def test_rejects_unknown_kind(self):
        with pytest.raises(PlanError):
            PartitionSpec(column="id", degree=2, kind="round_robin")


class TestPartitionedHeap:
    def test_every_live_row_in_exactly_one_partition(self):
        db = make_db()
        table = db.catalog.table("t")
        heap = PartitionedHeap(table, PartitionSpec("id", 4))
        assigned = sorted(
            rowid for p in heap.partitions for rowid in p.rowids
        )
        assert assigned == [rowid for rowid, _ in table.heap.scan()]

    def test_same_seed_and_degree_identical_across_rebuilds(self):
        db = make_db()
        table = db.catalog.table("t")
        spec = PartitionSpec("id", 4, seed=7)
        first = PartitionedHeap(table, spec)
        second = PartitionedHeap(table, spec)
        assert [p.rowids for p in first.partitions] \
            == [p.rowids for p in second.partitions]
        # And against an independently built database with the same
        # content — assignment depends only on key values, not on any
        # per-process state.
        other = make_db()
        third = PartitionedHeap(other.catalog.table("t"), spec)
        assert [p.rowids for p in first.partitions] \
            == [p.rowids for p in third.partitions]

    def test_different_seed_differs(self):
        db = make_db()
        table = db.catalog.table("t")
        a = PartitionedHeap(table, PartitionSpec("id", 4, seed=0))
        b = PartitionedHeap(table, PartitionSpec("id", 4, seed=99))
        assert [p.rowids for p in a.partitions] \
            != [p.rowids for p in b.partitions]

    def test_page_accounting_is_per_partition_ceiling(self):
        db = make_db()
        table = db.catalog.table("t")
        heap = PartitionedHeap(table, PartitionSpec("id", 4))
        rpp = table.heap.rows_per_page
        for p in heap.partitions:
            assert p.page_count == -(-len(p.rowids) // rpp)
            if p.rowids:
                assert p.page_of(0) == 0
                assert p.page_of(len(p.rowids) - 1) == p.page_count - 1
        assert heap.total_pages == sum(p.page_count
                                       for p in heap.partitions)

    def test_range_partitioning_orders_keys(self):
        db = make_db()
        table = db.catalog.table("t")
        heap = PartitionedHeap(table, PartitionSpec("id", 4, kind="range"))
        key = table.schema.column_index("id")
        highs = []
        for p in heap.partitions:
            keys = [table.heap.fetch(r)[key] for r in p.rowids]
            assert keys == sorted(keys)
            if keys:
                if highs:
                    assert keys[0] >= highs[-1]
                highs.append(keys[-1])

    def test_skewed_key_measured(self):
        db = make_db()
        table = db.catalog.table("t")
        # grp has 3 distinct values hashed into 4 partitions: at least
        # one partition is empty and skew is well above balanced.
        heap = PartitionedHeap(table, PartitionSpec("grp", 4))
        assert heap.skew() > 1.2
        balanced = PartitionedHeap(table, PartitionSpec("id", 4))
        assert balanced.skew() < heap.skew()


class TestTombstones:
    def test_delete_does_not_shift_sibling_partitions(self):
        db = make_db()
        table = db.catalog.table("t")
        manager = PartitionManager(db.ctx)
        spec = PartitionSpec("id", 4)
        before = manager.get(table, spec)
        victim_partition = before.partitions[2]
        victim_rowid = victim_partition.rowids[0]
        victim_id = table.heap.fetch(victim_rowid)[0]
        sibling_rowids = {
            p.index: list(p.rowids) for p in before.partitions
            if p.index != 2
        }
        sibling_pages = {
            p.index: p.page_count for p in before.partitions
            if p.index != 2
        }

        db.execute("DELETE FROM t WHERE id = ?", (victim_id,))

        # The snapshot keeps its rowid lists and page counts; the
        # deleted row resolves to a tombstone and is skipped.
        assert before.partitions[2].rowids == victim_partition.rowids
        for p in before.partitions:
            if p.index != 2:
                assert list(p.rowids) == sibling_rowids[p.index]
                assert p.page_count == sibling_pages[p.index]
        assert table.heap.get(victim_rowid) is None

        # A rebuild (triggered by the version bump) drops the victim
        # from partition 2 and leaves every sibling untouched.
        after = manager.get(table, spec)
        assert after is not before
        assert victim_rowid not in after.partitions[2].rowids
        for p in after.partitions:
            if p.index != 2:
                assert list(p.rowids) == sibling_rowids[p.index]
                assert p.page_count == sibling_pages[p.index]


class TestPartitionManager:
    def test_cache_hit_until_version_bump(self):
        db = make_db()
        table = db.catalog.table("t")
        manager = PartitionManager(db.ctx)
        spec = PartitionSpec("id", 4)
        first = manager.get(table, spec)
        assert manager.get(table, spec) is first
        db.execute("INSERT INTO t VALUES (9001, 'g0', 1.0)")
        rebuilt = manager.get(table, spec)
        assert rebuilt is not first
        assert db.metrics.get("parallel.partition_builds") == 2

    def test_build_charges_simulated_time(self):
        db = make_db()
        table = db.catalog.table("t")
        manager = PartitionManager(db.ctx)
        t0 = db.clock.now
        manager.get(table, PartitionSpec("id", 4))
        assert db.clock.now > t0

    def test_invalidate_drops_overlays(self):
        db = make_db()
        table = db.catalog.table("t")
        manager = PartitionManager(db.ctx)
        spec = PartitionSpec("id", 4)
        first = manager.get(table, spec)
        manager.invalidate("t")
        assert manager.get(table, spec) is not first
