"""CCMS over the LSM: compaction-backlog gauge, alert hysteresis,
and structural silence on heap-only databases.

The ``compaction_backlog`` gauge (pending L0 segments across all
tables) is attached only when the database runs the LSM backend, so a
heap run never samples it and the ``compaction_backlog_high`` rule's
streaks never move — the same structural-silence discipline every
default CCMS rule follows.
"""

from repro.engine.database import Database
from repro.engine.schema import Column, TableSchema
from repro.engine.types import SqlType
from repro.monitor.alerts import default_alert_rules
from repro.sim.params import SimParams


def _schema() -> TableSchema:
    return TableSchema(
        "t",
        [Column("id", SqlType.integer()), Column("v", SqlType.char(8))],
        ["id"],
    )


def _db(storage: str) -> Database:
    params = SimParams()
    params.lsm_memtable_bytes = 1024
    # high memtable:trigger ratio so nothing compacts while stacking is
    # explicitly held, yet release_compaction() drains the whole backlog
    params.lsm_l0_compaction_trigger = 2
    db = Database(params=params, storage=storage)
    db.create_table(_schema())
    db.monitor.enable()
    return db


def _stack_l0(db: Database, segments: int) -> None:
    """Flush ``segments`` L0 runs with compaction suspended."""
    table = db.catalog.table("t")
    table.heap.hold_compaction()
    base = table.row_count
    for i in range(segments):
        table.insert((base + i, f"s{i}"))
        table.heap.flush_memtable()


class TestCompactionBacklogRule:
    def test_rule_is_in_the_default_set(self):
        rules = {rule.name: rule for rule in default_alert_rules()}
        rule = rules["compaction_backlog_high"]
        assert (rule.gauge, rule.op, rule.threshold) == \
            ("compaction_backlog", ">=", 4)
        assert rule.fire_after == 2 and rule.clear_after == 2

    def test_heap_run_is_structurally_silent(self):
        db = _db("heap")
        table = db.catalog.table("t")
        for i in range(50):
            table.insert((i, f"v{i}"))
        db.clock.charge(1.0)
        db.monitor.sample()
        db.clock.charge(1.0)
        db.monitor.sample()
        assert "compaction_backlog" not in db.monitor.series
        assert not any(e.rule == "compaction_backlog_high"
                       for e in db.monitor.alerts.events)

    def test_lsm_gauge_sampled_even_when_calm(self):
        db = _db("lsm")
        db.clock.charge(1.0)
        db.monitor.sample()
        assert db.monitor.series["compaction_backlog"].values() == [0.0]

    def test_fire_and_clear_with_hysteresis(self):
        db = _db("lsm")
        _stack_l0(db, segments=5)
        db.clock.charge(1.0)
        first = db.monitor.sample()
        assert first == []  # fire_after=2: one breaching window is calm
        db.clock.charge(1.0)
        second = db.monitor.sample()
        assert [e.kind for e in second
                if e.rule == "compaction_backlog_high"] == ["fired"]
        # Drain the backlog and hold two calm windows to clear.
        db.catalog.table("t").heap.release_compaction()
        assert db.catalog.table("t").heap.compaction_backlog < 4
        db.clock.charge(1.0)
        third = db.monitor.sample()
        assert third == []  # clear_after=2
        db.clock.charge(1.0)
        fourth = db.monitor.sample()
        assert [e.kind for e in fourth
                if e.rule == "compaction_backlog_high"] == ["cleared"]
        assert db.metrics.get("monitor.alerts_fired") == 1
        assert db.metrics.get("monitor.alerts_cleared") == 1
