"""Crash-fuzz over the LSM backend's flush/compaction boundaries.

The LSM adds two durability-op kinds to the boundary stream —
``lsm.flush`` (a memtable flush sealing an SSTable) and
``lsm.compaction`` (a merge replacing segments) — and recovery must be
digest-identical when the process dies at any of them.  The sweep runs
the load workload with the fuzz-sized memtable the harness configures
for LSM runs, so both kinds actually appear in the boundary census.
"""

import pytest

from repro.sim.crashfuzz import run_crash_fuzz


class TestLsmCrashFuzz:
    @pytest.fixture(scope="class")
    def report(self):
        return run_crash_fuzz(workloads=("load",), sample=5,
                              corrupt_tail_trials=1, storage="lsm")

    def test_report_records_storage(self, report):
        assert report.storage == "lsm"
        assert report.to_json()["storage"] == "lsm"

    def test_lsm_boundaries_present(self, report):
        kinds = report.workloads[0].boundary_kinds
        assert kinds.get("lsm.flush", 0) > 0
        assert kinds.get("lsm.compaction", 0) > 0

    def test_every_trial_recovers_digest_identical(self, report):
        assert report.ok
        workload = report.workloads[0]
        assert workload.trials
        assert all(t.digest_ok for t in workload.trials)
