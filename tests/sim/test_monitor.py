"""Workload monitor: STAT conservation, zero-tick identity, CCMS alerts."""

import json

import pytest

from repro.monitor import (
    NOOP_LAYER,
    AlertEngine,
    AlertRule,
    RingSeries,
    WorkloadMonitor,
    build_report,
    render_report,
)
from repro.monitor.core import statement_fingerprint
from repro.monitor.profile import percentile
from repro.sim.clock import SimulatedClock
from repro.sim.metrics import MetricsCollector

#: tiny world so the integration runs stay fast in CI
MONITOR_SF = 0.0005


def _bare_monitor(**kwargs):
    clock = SimulatedClock()
    metrics = MetricsCollector()
    return WorkloadMonitor(clock, metrics, **kwargs), clock, metrics


def _run_workload(monitoring):
    """One deterministic throughput run; monitor optionally enabled."""
    from repro.core.powertest import build_sap_system
    from repro.core.throughput import run_throughput_test
    from repro.r3.appserver import R3Version
    from repro.reports import open30
    from repro.sim.chaos import default_chaos_config
    from repro.tpcd.dbgen import (
        delete_keys,
        generate,
        generate_refresh_orders,
    )

    data = generate(MONITOR_SF)
    r3 = build_sap_system(data, R3Version.V30)
    if monitoring:
        r3.monitor.enable()
    suite = open30.make_queries(MONITOR_SF)
    update_sets = [(generate_refresh_orders(
        data, seed=123, start_key=data.max_orderkey + 1),
        delete_keys(data, seed=321))]
    result = run_throughput_test(
        r3, suite, streams=2, update_sets=update_sets,
        dispatcher=default_chaos_config())
    return r3, result


@pytest.fixture(scope="module")
def monitored():
    return _run_workload(monitoring=True)


@pytest.fixture(scope="module")
def unmonitored():
    return _run_workload(monitoring=False)


class TestLayerAccounting:
    def test_disabled_layer_is_the_noop_singleton(self):
        monitor, _clock, _metrics = _bare_monitor()
        assert monitor.layer("dbif") is NOOP_LAYER
        assert monitor.layer("engine") is NOOP_LAYER

    def test_begin_step_disabled_returns_none(self):
        monitor, _clock, _metrics = _bare_monitor()
        assert monitor.begin_step("dialog", "q1") is None
        assert monitor.end_step(None) is None

    def test_exclusive_attribution_with_nesting(self):
        monitor, clock, _metrics = _bare_monitor()
        monitor.enable()
        step = monitor.begin_step("dialog", "q1", wp="D0")
        clock.charge(1.0)                    # abap
        with monitor.layer("dbif"):
            clock.charge(2.0)                # dbif
            with monitor.layer("engine"):
                clock.charge(3.0)            # engine
                with monitor.layer("commit"):
                    clock.charge(0.25)       # commit
            clock.charge(1.0)                # dbif again
        clock.charge(0.5)                    # abap again
        record = monitor.end_step(step)
        assert record.abap_s == pytest.approx(1.5)
        assert record.dbif_s == pytest.approx(3.0)
        assert record.engine_s == pytest.approx(3.0)
        assert record.commit_s == pytest.approx(0.25)
        assert record.rollin_s == 0.0
        assert record.response_s == pytest.approx(7.75)
        assert record.db_s == pytest.approx(6.25)

    def test_conservation_is_bit_exact(self):
        monitor, clock, _metrics = _bare_monitor()
        monitor.enable()
        # awkward float charges so naive regrouping would leave residue
        step = monitor.begin_step("dialog", "q", queue_wait_s=0.1)
        for amount in (0.1, 0.2, 0.3, 0.7, 1e-9, 0.111111):
            clock.charge(amount)
            with monitor.layer("dbif"):
                clock.charge(amount / 3)
                with monitor.layer("engine"):
                    clock.charge(amount / 7)
        record = monitor.end_step(step)
        assert record.decomposed_s() == record.response_s

    def test_nested_steps_are_suppressed(self):
        monitor, clock, _metrics = _bare_monitor()
        monitor.enable()
        outer = monitor.begin_step("dialog", "outer")
        assert monitor.begin_step("dialog", "inner") is None
        clock.charge(1.0)
        record = monitor.end_step(outer)
        assert record is not None and record.label == "outer"
        assert len(monitor.stat_records) == 1

    def test_unbalanced_exit_recovers_stack(self):
        monitor, clock, _metrics = _bare_monitor()
        monitor.enable()
        monitor._push("dbif")
        monitor._push("engine")
        clock.charge(1.0)
        monitor._pop("dbif")  # exception unwound past "engine"
        assert monitor._stack == []

    def test_disable_mid_step_abandons_the_record(self):
        monitor, clock, metrics = _bare_monitor()
        monitor.enable()
        step = monitor.begin_step("dialog", "q")
        clock.charge(1.0)
        monitor.disable()
        assert monitor.end_step(step) is None
        assert len(monitor.stat_records) == 0
        assert metrics.get("monitor.stat_records") == 0

    def test_step_counts_metric(self):
        monitor, clock, metrics = _bare_monitor()
        monitor.enable()
        for i in range(3):
            step = monitor.begin_step("dialog", f"q{i}")
            clock.charge(0.5)
            monitor.end_step(step)
        assert metrics.get("monitor.stat_records") == 3


class TestRings:
    def test_stat_ring_caps_but_seq_keeps_counting(self):
        monitor, clock, _metrics = _bare_monitor(stat_capacity=4)
        monitor.enable()
        for i in range(10):
            step = monitor.begin_step("dialog", f"q{i}")
            clock.charge(0.1)
            monitor.end_step(step)
        assert len(monitor.stat_records) == 4
        assert monitor.stat_records[-1].seq == 10
        assert monitor.stat_records[0].seq == 7

    def test_series_ring_capacity_and_summary(self):
        series = RingSeries("queue_depth", capacity=3)
        for i in range(5):
            series.append(float(i), float(i * 2))
        assert len(series) == 3
        assert series.values() == [4.0, 6.0, 8.0]
        assert series.last == (4.0, 8.0)
        summary = series.summary()
        assert summary == {"samples": 3, "last": 8.0, "min": 4.0,
                           "max": 8.0, "mean": 6.0}

    def test_empty_series_summary(self):
        assert RingSeries("x", 4).summary() == {"samples": 0}


class TestStatements:
    def test_aggregation_and_ranking(self):
        monitor, _clock, _metrics = _bare_monitor()
        monitor.enable()
        monitor.record_statement("SELECT a FROM t", 0.5, 10)
        monitor.record_statement("SELECT a FROM t", 0.25, 5)
        monitor.record_statement("SELECT b FROM u", 2.0, 1)
        top = monitor.top_statements(10)
        assert [s.sql for s in top] == ["SELECT b FROM u",
                                        "SELECT a FROM t"]
        assert top[1].calls == 2
        assert top[1].db_s == pytest.approx(0.75)
        assert top[1].rows == 15
        assert top[1].to_dict()["per_call_s"] == pytest.approx(0.375)

    def test_capacity_drops_are_counted(self):
        monitor, _clock, metrics = _bare_monitor(statement_capacity=2)
        monitor.enable()
        monitor.record_statement("one", 0.1, 1)
        monitor.record_statement("two", 0.1, 1)
        monitor.record_statement("three", 0.1, 1)
        monitor.record_statement("one", 0.1, 1)  # known: still tracked
        assert len(monitor.statements) == 2
        assert metrics.get("monitor.statements_dropped") == 1
        assert monitor.statements["one"].calls == 2

    def test_fingerprint_normalizes_whitespace_and_case(self):
        a = statement_fingerprint("SELECT  x\n  FROM t")
        b = statement_fingerprint("select x from T".replace("T", "t"))
        assert a == b
        assert len(a) == 12
        assert a != statement_fingerprint("select y from t")


class TestAlertEngine:
    def test_fire_after_hysteresis(self):
        engine = AlertEngine([AlertRule("q", "depth", ">=", 5,
                                        fire_after=2, clear_after=2)])
        assert engine.observe(1.0, {"depth": 7.0}) == []
        fired = engine.observe(2.0, {"depth": 9.0})
        assert [e.kind for e in fired] == ["fired"]
        assert engine.active() == ["q"]
        # one calm window is not enough to clear
        assert engine.observe(3.0, {"depth": 1.0}) == []
        cleared = engine.observe(4.0, {"depth": 0.0})
        assert [e.kind for e in cleared] == ["cleared"]
        assert engine.active() == []
        assert engine.fired_total == 1

    def test_missing_gauge_keeps_streaks(self):
        engine = AlertEngine([AlertRule("q", "depth", ">=", 5,
                                        fire_after=2)])
        engine.observe(1.0, {"depth": 9.0})
        engine.observe(2.0, {})  # gauge absent: streak untouched
        fired = engine.observe(3.0, {"depth": 9.0})
        assert [e.kind for e in fired] == ["fired"]

    def test_refire_after_clear(self):
        engine = AlertEngine([AlertRule("q", "depth", ">=", 5)])
        engine.observe(1.0, {"depth": 9.0})
        engine.observe(2.0, {"depth": 0.0})
        engine.observe(3.0, {"depth": 9.0})
        assert engine.fired_total == 2
        assert engine.fired_by_rule() == {"q": 2}

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ValueError):
            AlertEngine([AlertRule("q", "a", ">=", 1),
                         AlertRule("q", "b", ">=", 1)])

    def test_bad_op_and_bad_windows_rejected(self):
        with pytest.raises(ValueError):
            AlertRule("q", "depth", "==", 5)
        with pytest.raises(ValueError):
            AlertRule("q", "depth", ">=", 5, fire_after=0)

    def test_to_dict_shape(self):
        engine = AlertEngine([AlertRule("q", "depth", ">=", 5,
                                        severity="red")])
        engine.observe(1.5, {"depth": 6.0})
        doc = engine.to_dict()
        assert doc["fired_total"] == 1
        rule = doc["rules"][0]
        assert rule["severity"] == "red" and rule["active"]
        event = doc["events"][0]
        assert event["kind"] == "fired" and event["rule"] == "q"
        assert "depth >= 5" in event["condition"]
        json.dumps(doc)


class TestGaugeSampling:
    def test_event_gauges_are_window_deltas(self):
        monitor, clock, metrics = _bare_monitor()
        monitor.enable()
        metrics.count("dbif.breaker.open")
        clock.charge(1.0)
        monitor.sample()
        metrics.count("dispatcher.shed", 3)
        clock.charge(1.0)
        monitor.sample()
        assert monitor.series["breaker_open_events"].values() == [1.0, 0.0]
        assert monitor.series["shed_events"].values() == [0.0, 3.0]

    def test_rate_gauges_skip_empty_windows(self):
        monitor, clock, metrics = _bare_monitor()
        monitor.enable()
        clock.charge(1.0)
        monitor.sample()
        assert "pool_hit_rate" not in monitor.series
        metrics.count("buffer.hits", 3)
        metrics.count("buffer.misses", 1)
        clock.charge(1.0)
        monitor.sample()
        assert monitor.series["pool_hit_rate"].values() == [0.75]

    def test_maybe_sample_respects_interval(self):
        monitor, clock, metrics = _bare_monitor(sample_interval_s=2.0)
        monitor.enable()
        clock.charge(1.0)
        monitor.maybe_sample()
        assert metrics.get("monitor.samples") == 0
        clock.charge(1.0)
        monitor.maybe_sample()
        assert metrics.get("monitor.samples") == 1

    def test_attached_source_sampled_and_replaceable(self):
        monitor, clock, _metrics = _bare_monitor()
        monitor.enable()
        monitor.attach_source("queue_depth", lambda: 4.0)
        clock.charge(1.0)
        monitor.sample()
        monitor.attach_source("queue_depth", lambda: None)  # replaced
        clock.charge(1.0)
        monitor.sample()
        assert monitor.series["queue_depth"].values() == [4.0]

    def test_alert_fires_from_sampled_gauge(self):
        monitor, clock, metrics = _bare_monitor()
        monitor.enable()
        metrics.count("dbif.breaker.open")
        clock.charge(1.0)
        transitions = monitor.sample()
        assert [t.kind for t in transitions] == ["fired"]
        assert metrics.get("monitor.alerts_fired") == 1
        clock.charge(1.0)
        monitor.sample()  # calm window clears (clear_after=1)
        assert metrics.get("monitor.alerts_cleared") == 1

    def test_finish_forces_tail_sample(self):
        monitor, clock, metrics = _bare_monitor(sample_interval_s=100.0)
        monitor.enable()
        clock.charge(1.0)
        monitor.finish()
        assert metrics.get("monitor.samples") == 1


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 99) == 99.0
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0
        assert percentile([3.0, 1.0, 2.0], 99) == 3.0
        assert percentile([], 95) == 0.0


class TestMonitoredWorkload:
    def test_stat_records_written(self, monitored):
        r3, _result = monitored
        records = list(r3.monitor.stat_records)
        assert len(records) >= 30  # 2 streams x 17 queries + updates
        assert {r.task for r in records} >= {"dialog", "update"}
        assert all(r.wp for r in records if r.outcome == "completed")

    def test_conservation_on_every_record(self, monitored):
        r3, _result = monitored
        for record in r3.monitor.stat_records:
            assert record.decomposed_s() == record.response_s
            assert record.db_s <= record.response_s + 1e-9

    def test_layers_actually_populated(self, monitored):
        r3, _result = monitored
        records = list(r3.monitor.stat_records)
        assert any(r.dbif_s > 0 for r in records)
        assert any(r.engine_s > 0 for r in records)
        assert any(r.rollin_s > 0 for r in records)
        # 2 streams on 4 dialog processes: no queue contention expected;
        # durability is off on this path, so commit time lives below
        assert all(r.queue_wait_s >= 0 for r in records)
        assert all(r.commit_s == 0 for r in records)

    def test_commit_layer_accrues_under_wal(self):
        from repro.engine.database import Database

        db = Database(durability="wal")
        db.monitor.enable()
        from repro.engine.schema import Column, TableSchema
        from repro.engine.types import SqlType

        db.create_table(TableSchema(
            "t", [Column("id", SqlType.integer())], ["id"]))
        table = db.catalog.table("t")
        step = db.monitor.begin_step("update", "ins", wp="UPD")
        db.begin()
        for i in range(5):
            table.insert((i,))
        db.commit()
        record = db.monitor.end_step(step)
        assert record.commit_s > 0
        assert record.decomposed_s() == record.response_s

    def test_statements_recorded(self, monitored):
        r3, _result = monitored
        top = r3.monitor.top_statements(5)
        assert top and top[0].calls >= 1 and top[0].db_s > 0

    def test_gauges_sampled(self, monitored):
        r3, _result = monitored
        assert len(r3.monitor.series.get("queue_depth", ())) >= 1
        assert r3.metrics.get("monitor.samples") >= 1

    def test_no_alerts_without_faults(self, monitored):
        r3, _result = monitored
        assert r3.monitor.alerts.fired_total == 0

    def test_build_report_shape(self, monitored):
        r3, result = monitored
        report = build_report(r3.monitor, meta={"streams": 2},
                              include_stat_records=True)
        assert report["format"] == "repro-monitor-v1"
        tasks = [p["task"] for p in report["profile"]]
        assert tasks == sorted(
            tasks, key=lambda t: {"dialog": 0, "update": 1}.get(t, 9))
        dialog = report["profile"][0]
        assert dialog["task"] == "dialog"
        assert dialog["response_s"]["p95"] >= dialog["response_s"]["p50"]
        assert 0 < dialog["db_share"] <= 1
        assert report["db"]["top"]
        assert report["counters"]["stat_records"] == \
            len(r3.monitor.stat_records)
        assert len(report["stat_records"]) == len(r3.monitor.stat_records)
        json.dumps(report)

    def test_render_report_sections(self, monitored):
        r3, _result = monitored
        report = build_report(r3.monitor)
        text = render_report(report)
        assert "ST03 workload profile" in text
        assert "ST04 top statements" in text
        assert "CCMS alerts" in text
        only_alerts = render_report(report, sections=("alerts",))
        assert "ST03" not in only_alerts and "CCMS alerts" in only_alerts


class TestZeroTick:
    def test_monitoring_is_tick_identical(self, monitored, unmonitored):
        r3_on, result_on = monitored
        r3_off, result_off = unmonitored
        assert r3_on.clock.now == r3_off.clock.now
        assert result_on.elapsed_s == result_off.elapsed_s
        assert result_on.queries_per_hour == result_off.queries_per_hour

    def test_only_monitor_counters_differ(self, monitored, unmonitored):
        r3_on, _on = monitored
        r3_off, _off = unmonitored
        on = {name: value for name, value in r3_on.metrics.all().items()
              if not name.startswith("monitor.")}
        off = {name: value for name, value in r3_off.metrics.all().items()
               if not name.startswith("monitor.")}
        assert on == off

    def test_disabled_monitor_leaves_no_counters(self, unmonitored):
        r3_off, _off = unmonitored
        assert not any(name.startswith("monitor.")
                       for name in r3_off.metrics.all())
        assert len(r3_off.monitor.stat_records) == 0
        assert r3_off.monitor.series == {}


class TestCli:
    def test_monitor_json_smoke(self, tmp_path, capsys):
        from repro.__main__ import main

        out_file = tmp_path / "workload.json"
        rc = main(["monitor", "--profile", "--format", "json",
                   "--sf", str(MONITOR_SF),
                   "--monitor-streams", "2",
                   "--monitor-out", str(out_file)])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "repro-monitor-v1"
        assert doc["meta"]["streams"] == 2
        assert doc["profile"]
        assert json.loads(out_file.read_text()) == doc

    def test_monitor_text_output(self, capsys):
        from repro.__main__ import main

        rc = main(["monitor", "--alerts", "--sf", str(MONITOR_SF),
                   "--monitor-streams", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "CCMS alerts" in out
        assert "ST03" not in out  # --alerts alone skips the profile

    def test_monitor_bad_args(self, capsys):
        from repro.__main__ import main

        assert main(["monitor", "--monitor-streams", "0"]) == 2
        assert main(["monitor", "--window", "0"]) == 2
        assert main(["monitor", "--format", "chrome"]) == 2
