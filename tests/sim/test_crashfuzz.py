"""Crash-point fuzz harness: sampling, report format, small live sweep."""

import json

import pytest

from repro.sim.crashfuzz import (
    FUZZ_WORKLOADS,
    CrashTrial,
    WorkloadFuzzReport,
    _sample_boundaries,
    run_crash_fuzz,
)


class TestSampleBoundaries:
    def test_exhaustive_when_sample_is_none(self):
        assert _sample_boundaries(5, None) == [1, 2, 3, 4, 5]

    def test_includes_first_and_last(self):
        ks = _sample_boundaries(1000, 6)
        assert ks[0] == 1
        assert ks[-1] == 1000
        assert len(ks) == 6
        assert ks == sorted(set(ks))

    def test_sample_larger_than_total_is_exhaustive(self):
        assert _sample_boundaries(4, 100) == [1, 2, 3, 4]


class TestReportShape:
    def test_workload_report_divergences(self):
        report = WorkloadFuzzReport(
            workload="load", boundaries=10,
            boundary_kinds={"wal.flush": 10}, reference_digest="abc",
            trials=[
                CrashTrial(k=1, mode="clean", digest_ok=True),
                CrashTrial(k=2, mode="torn", digest_ok=False),
                CrashTrial(k=3, mode="clean", digest_ok=True,
                           error="boom"),
            ],
        )
        assert not report.ok
        assert len(report.divergences) == 2

    def test_workload_names_are_registered(self):
        assert FUZZ_WORKLOADS == ("load", "uf", "power")


class TestLiveSweep:
    @pytest.fixture(scope="class")
    def report(self):
        return run_crash_fuzz(workloads=("load",), sample=4,
                              corrupt_tail_trials=1)

    def test_every_trial_recovers(self, report):
        assert report.ok
        workload = report.workloads[0]
        assert workload.boundaries > 0
        assert all(t.digest_ok for t in workload.trials)

    def test_covers_all_modes(self, report):
        modes = {t.mode for t in report.workloads[0].trials}
        assert modes == {"clean", "torn", "corrupt-tail"}

    def test_checkpoint_boundaries_present(self, report):
        kinds = report.workloads[0].boundary_kinds
        assert "checkpoint.begin" in kinds
        assert "checkpoint.end" in kinds
        assert "wal.fsync" in kinds

    def test_torn_trials_recover(self, report):
        torn = [t for t in report.workloads[0].trials
                if t.mode == "torn"]
        assert torn and all(t.digest_ok for t in torn)
        # injection only bites when the crash lands on a flush boundary
        for trial in torn:
            if trial.kind == "wal.flush":
                assert trial.torn_frames > 0

    def test_json_roundtrip(self, report):
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["format"] == "repro-crashfuzz-v1"
        assert payload["ok"] is True
        trials = payload["workloads"][0]["trials"]
        assert all("k" in t and "mode" in t for t in trials)

    def test_render_mentions_verdict(self, report):
        text = report.render()
        assert "load" in text
        assert "ok" in text
