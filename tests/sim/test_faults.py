"""FaultInjector scheduling, determinism and metrics."""

import pytest

from repro.engine.errors import ConnectionLostError, DiskIOError
from repro.r3.errors import WorkProcessCrash
from repro.sim.clock import SimulatedClock
from repro.sim.faults import (
    FaultInjector,
    FaultProfile,
    PROFILE_HEAVY,
    PROFILE_LIGHT,
    PROFILE_NONE,
)
from repro.sim.metrics import MetricsCollector


def _injector(profile):
    return FaultInjector(profile, SimulatedClock(), MetricsCollector())


class TestProfiles:
    def test_standard_profiles(self):
        assert PROFILE_NONE.disk_error_every is None
        assert PROFILE_NONE.connection_drop_every is None
        assert PROFILE_NONE.crash_at_s == ()
        assert PROFILE_HEAVY.disk_error_every < PROFILE_LIGHT.disk_error_every
        assert (PROFILE_HEAVY.connection_drop_every
                < PROFILE_LIGHT.connection_drop_every)

    def test_jitter_bounds(self):
        with pytest.raises(ValueError):
            FaultProfile(jitter=1.0)
        with pytest.raises(ValueError):
            FaultProfile(jitter=-0.1)

    def test_burst_bounds(self):
        with pytest.raises(ValueError):
            FaultProfile(connection_drop_burst=0)


class TestSchedules:
    def test_none_profile_never_fires(self):
        injector = _injector(PROFILE_NONE)
        for _ in range(1000):
            injector.on_disk_op()
            injector.on_roundtrip()
            injector.maybe_crash()

    def test_disk_faults_fire_on_exact_period_without_jitter(self):
        injector = _injector(FaultProfile(disk_error_every=5))
        fired = []
        for _ in range(20):
            try:
                injector.on_disk_op()
            except DiskIOError:
                fired.append(injector.disk_ops)
        assert fired == [5, 10, 15, 20]

    def test_connection_faults_fire_on_period(self):
        injector = _injector(FaultProfile(connection_drop_every=4))
        fired = []
        for _ in range(12):
            try:
                injector.on_roundtrip()
            except ConnectionLostError:
                fired.append(injector.roundtrips)
        assert fired == [4, 8, 12]

    def test_connection_burst_fails_consecutive_roundtrips(self):
        injector = _injector(FaultProfile(connection_drop_every=3,
                                          connection_drop_burst=3))
        outcomes = []
        for _ in range(7):
            try:
                injector.on_roundtrip()
                outcomes.append("ok")
            except ConnectionLostError:
                outcomes.append("drop")
        # Event at trip 3 bursts through trips 3-5; the next period
        # (3 trips) counts from the end of the burst -> next at 8.
        assert outcomes == ["ok", "ok", "drop", "drop", "drop",
                            "ok", "ok"]

    def test_crash_fires_once_per_schedule_entry(self):
        clock = SimulatedClock()
        injector = FaultInjector(FaultProfile(crash_at_s=(10.0, 20.0)),
                                 clock, MetricsCollector())
        injector.maybe_crash()  # clock at 0: nothing due
        clock.charge(12)
        with pytest.raises(WorkProcessCrash):
            injector.maybe_crash()
        injector.maybe_crash()  # first crash consumed
        assert injector.crashes_pending == 1
        clock.charge(12)
        with pytest.raises(WorkProcessCrash):
            injector.maybe_crash()
        injector.maybe_crash()
        assert injector.crashes_pending == 0

    def test_wp_crashes_fire_on_period(self):
        injector = _injector(FaultProfile(work_process_crash_every=3))
        fired = []
        for _ in range(9):
            try:
                injector.on_wp_request()
            except WorkProcessCrash:
                fired.append(injector.wp_requests)
        assert fired == [3, 6, 9]

    def test_wp_crash_disabled_by_default(self):
        injector = _injector(FaultProfile(disk_error_every=5))
        for _ in range(100):
            injector.on_wp_request()
        assert injector.wp_requests == 100

    def test_wp_crash_schedule_is_seeded(self):
        profile = FaultProfile(seed=11, work_process_crash_every=40,
                               jitter=0.3)

        def sequence():
            injector = _injector(profile)
            fired = []
            for _ in range(1000):
                try:
                    injector.on_wp_request()
                except WorkProcessCrash:
                    fired.append(injector.wp_requests)
            return fired

        first = sequence()
        assert first and first == sequence()
        gaps = [b - a for a, b in zip(first, first[1:])]
        assert all(28 <= gap <= 52 for gap in gaps)

    def test_metrics_count_injected_faults(self):
        metrics = MetricsCollector()
        injector = FaultInjector(
            FaultProfile(disk_error_every=2, connection_drop_every=2),
            SimulatedClock(), metrics)
        for _ in range(4):
            try:
                injector.on_disk_op()
            except DiskIOError:
                pass
            try:
                injector.on_roundtrip()
            except ConnectionLostError:
                pass
        assert metrics.get("faults.disk_io_injected") == 2
        assert metrics.get("faults.connection_drops_injected") == 2

    def test_metrics_count_wp_crashes(self):
        metrics = MetricsCollector()
        injector = FaultInjector(FaultProfile(work_process_crash_every=2),
                                 SimulatedClock(), metrics)
        for _ in range(4):
            try:
                injector.on_wp_request()
            except WorkProcessCrash:
                pass
        assert metrics.get("faults.crashes_injected") == 2


class TestDeterminism:
    def _fire_sequence(self, profile, ops=5000):
        injector = _injector(profile)
        fired = []
        for _ in range(ops):
            try:
                injector.on_disk_op()
            except DiskIOError:
                fired.append(injector.disk_ops)
            try:
                injector.on_roundtrip()
            except ConnectionLostError:
                fired.append(-injector.roundtrips)
        return fired

    def test_same_seed_same_schedule(self):
        profile = FaultProfile(seed=42, disk_error_every=70,
                               connection_drop_every=110, jitter=0.3)
        assert self._fire_sequence(profile) == self._fire_sequence(profile)

    def test_different_seed_different_schedule(self):
        a = FaultProfile(seed=1, disk_error_every=70,
                         connection_drop_every=110, jitter=0.3)
        b = FaultProfile(seed=2, disk_error_every=70,
                         connection_drop_every=110, jitter=0.3)
        assert self._fire_sequence(a) != self._fire_sequence(b)

    def test_jitter_stays_near_mean(self):
        profile = FaultProfile(seed=7, disk_error_every=100, jitter=0.2)
        injector = _injector(profile)
        fired = []
        for _ in range(10_000):
            try:
                injector.on_disk_op()
            except DiskIOError:
                fired.append(injector.disk_ops)
        gaps = [b - a for a, b in zip(fired, fired[1:])]
        assert gaps and all(80 <= gap <= 120 for gap in gaps)
