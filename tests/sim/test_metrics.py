from repro.sim.metrics import MetricsCollector


class TestMetricsCollector:
    def test_count_default_one(self):
        metrics = MetricsCollector()
        metrics.count("x")
        metrics.count("x")
        assert metrics.get("x") == 2

    def test_count_amount(self):
        metrics = MetricsCollector()
        metrics.count("rows", 10)
        metrics.count("rows", 5)
        assert metrics.get("rows") == 15

    def test_unknown_counter_is_zero(self):
        assert MetricsCollector().get("missing") == 0

    def test_snapshot_delta(self):
        metrics = MetricsCollector()
        metrics.count("a", 3)
        snap = metrics.snapshot()
        metrics.count("a", 2)
        metrics.count("b", 1)
        assert snap.delta() == {"a": 2, "b": 1}
        assert snap.get("a") == 2
        assert snap.get("c") == 0

    def test_snapshot_excludes_unchanged(self):
        metrics = MetricsCollector()
        metrics.count("a")
        snap = metrics.snapshot()
        assert snap.delta() == {}

    def test_iteration_sorted(self):
        metrics = MetricsCollector()
        metrics.count("zz")
        metrics.count("aa")
        assert [name for name, _v in metrics] == ["aa", "zz"]

    def test_reset(self):
        metrics = MetricsCollector()
        metrics.count("a")
        metrics.reset()
        assert metrics.all() == {}

    def test_delta_reports_reset_counters(self):
        metrics = MetricsCollector()
        metrics.count("a", 3)
        metrics.count("b", 1)
        snap = metrics.snapshot()
        metrics.reset()
        metrics.count("b", 1)
        # 'a' vanished entirely, 'b' is back at its old value
        assert snap.delta() == {"a": -3}
        assert snap.get("a") == -3

    def test_delta_negative_when_counter_readded_lower(self):
        metrics = MetricsCollector()
        metrics.count("a", 10)
        snap = metrics.snapshot()
        metrics.reset()
        metrics.count("a", 4)
        # not dropped and not +4: reset-then-recount must be visible
        assert snap.delta() == {"a": -6}
        assert snap.get("a") == -6

    def test_snapshot_isolation_across_collectors(self):
        one, two = MetricsCollector(), MetricsCollector()
        one.count("shared", 1)
        snap_one = one.snapshot()
        snap_two = two.snapshot()
        one.count("shared", 2)
        two.count("shared", 7)
        two.count("other", 1)
        assert snap_one.delta() == {"shared": 2}
        assert snap_two.delta() == {"shared": 7, "other": 1}
        # each snapshot reads only its own collector
        assert snap_one.get("other") == 0
        assert snap_two.get("shared") == 7


class TestMetricsScope:
    def test_scoped_freezes_delta_at_exit(self):
        metrics = MetricsCollector()
        metrics.count("before", 5)
        with metrics.scoped() as scope:
            metrics.count("inside", 2)
            assert scope.get("inside") == 2
        metrics.count("after", 9)
        assert scope.delta == {"inside": 2}

    def test_scope_before_enter_is_empty(self):
        scope = MetricsCollector().scoped()
        assert scope.delta == {} and scope.get("x") == 0

    def test_nested_scopes_account_independently(self):
        metrics = MetricsCollector()
        with metrics.scoped() as outer:
            metrics.count("a", 1)
            with metrics.scoped() as inner:
                metrics.count("a", 2)
                metrics.count("b", 5)
            metrics.count("a", 4)
        # the inner scope sees only what happened inside it; the outer
        # scope sees everything, including the inner block's counts
        assert inner.delta == {"a": 2, "b": 5}
        assert outer.delta == {"a": 7, "b": 5}

    def test_nested_scope_live_reads_do_not_leak_outer(self):
        metrics = MetricsCollector()
        metrics.count("x", 3)
        with metrics.scoped():
            metrics.count("x", 1)
            with metrics.scoped() as inner:
                assert inner.get("x") == 0
                metrics.count("x", 2)
                assert inner.get("x") == 2
