import pytest

from repro.sim.clock import SimulatedClock, format_duration


class TestSimulatedClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now == 0.0

    def test_charge_accumulates(self):
        clock = SimulatedClock()
        clock.charge(1.5)
        clock.charge(2.5)
        assert clock.now == 4.0

    def test_negative_charge_rejected(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.charge(-1.0)

    def test_span_measures_window(self):
        clock = SimulatedClock()
        clock.charge(10.0)
        span = clock.span()
        clock.charge(3.0)
        assert span.stop() == 3.0
        # time after stop is not counted
        clock.charge(5.0)
        assert span.elapsed == 3.0

    def test_span_context_manager(self):
        clock = SimulatedClock()
        with clock.span() as span:
            clock.charge(2.0)
        assert span.elapsed == 2.0

    def test_nested_spans(self):
        clock = SimulatedClock()
        outer = clock.span()
        clock.charge(1.0)
        inner = clock.span()
        clock.charge(2.0)
        assert inner.stop() == 2.0
        assert outer.stop() == 3.0

    def test_reset(self):
        clock = SimulatedClock()
        clock.charge(7.0)
        clock.reset()
        assert clock.now == 0.0


class TestFormatDuration:
    def test_seconds(self):
        assert format_duration(34) == "34s"

    def test_minutes(self):
        assert format_duration(5 * 60 + 17) == "5m 17s"

    def test_hours(self):
        assert format_duration(2 * 3600 + 14 * 60 + 56) == "2h 14m 56s"

    def test_days(self):
        seconds = 25 * 86400 + 19 * 3600 + 55 * 60
        assert format_duration(seconds) == "25d 19h 55m"

    def test_zero(self):
        assert format_duration(0) == "0s"

    def test_rounding(self):
        assert format_duration(59.6) == "1m 00s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1)
