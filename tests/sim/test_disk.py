from repro.sim.clock import SimulatedClock
from repro.sim.disk import DiskModel
from repro.sim.metrics import MetricsCollector
from repro.sim.params import SimParams


def _disk():
    clock = SimulatedClock()
    metrics = MetricsCollector()
    return DiskModel(clock, metrics, seq_read_s=0.001, random_read_s=0.01,
                     write_s=0.02), clock, metrics


class TestDiskModel:
    def test_sequential_read_cost(self):
        disk, clock, metrics = _disk()
        disk.read_page(sequential=True)
        assert clock.now == 0.001
        assert metrics.get("disk.seq_reads") == 1

    def test_random_read_cost(self):
        disk, clock, metrics = _disk()
        disk.read_page(sequential=False)
        assert clock.now == 0.01
        assert metrics.get("disk.random_reads") == 1

    def test_random_costs_more_than_sequential(self):
        params = SimParams()
        assert params.random_read_s > params.seq_read_s

    def test_write_cost(self):
        disk, clock, metrics = _disk()
        disk.write_page()
        assert clock.now == 0.02
        assert metrics.get("disk.writes") == 1


class TestSimParams:
    def test_pages_for_bytes_rounds_up(self):
        params = SimParams(page_size_bytes=8192)
        assert params.pages_for_bytes(1) == 1
        assert params.pages_for_bytes(8192) == 1
        assert params.pages_for_bytes(8193) == 2
        assert params.pages_for_bytes(0) == 0

    def test_default_buffer_is_papers_10mb(self):
        assert SimParams().buffer_pool_bytes == 10 * 1024 * 1024
