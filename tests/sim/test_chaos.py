"""Chaos harness: sweep invariants, JSON report, CLI exit codes."""

import json

import pytest

from repro.sim.chaos import (
    CHAOS_PROFILES,
    ChaosCell,
    default_chaos_config,
    run_chaos,
)

#: tiny world so the full sweep stays fast in CI
CHAOS_SF = 0.0005


@pytest.fixture(scope="module")
def report():
    return run_chaos(scale_factor=CHAOS_SF, stream_counts=(2,),
                     profiles=("none", "light", "heavy"),
                     update_pairs=1)


class TestInvariants:
    def test_sweep_holds_all_invariants(self, report):
        assert report.violations == []
        assert report.ok

    def test_conservation_per_cell(self, report):
        for cell in report.cells:
            assert cell.conserved
            assert cell.submitted == \
                cell.completed + cell.shed + cell.rejected
            assert cell.updates_submitted == \
                cell.updates_run + cell.updates_shed

    def test_heavy_storm_trips_and_recovers_breaker(self, report):
        heavy = report.cell(2, "heavy")
        assert heavy.breaker_opened >= 1
        assert heavy.breaker_recovered
        assert heavy.breaker_final == "closed"

    def test_monotone_degradation(self, report):
        none = report.cell(2, "none")
        light = report.cell(2, "light")
        heavy = report.cell(2, "heavy")
        assert none.queries_per_hour >= light.queries_per_hour
        assert light.queries_per_hour >= heavy.queries_per_hour

    def test_fault_free_cell_is_clean(self, report):
        none = report.cell(2, "none")
        assert none.shed == 0
        assert none.requeued == 0
        assert none.wp_restarts == 0
        assert none.breaker_opened == 0

    def test_crashes_surface_as_requeues(self, report):
        # both fault profiles crash work processes at this scale
        light = report.cell(2, "light")
        heavy = report.cell(2, "heavy")
        assert light.wp_restarts + heavy.wp_restarts >= 1
        assert light.requeued + heavy.requeued >= 1


class TestAlerts:
    def test_heavy_storm_fires_ccms_alerts(self, report):
        heavy = report.cell(2, "heavy")
        assert heavy.alerts_fired >= 1
        assert heavy.alerts_by_rule.get("breaker_tripped", 0) >= 1

    def test_none_profile_stays_silent(self, report):
        none = report.cell(2, "none")
        assert none.alerts_fired == 0
        assert none.alerts_by_rule == {}

    def test_json_carries_alert_firings(self, report):
        doc = report.to_json()
        for cell in doc["cells"]:
            assert "alerts" in cell
            assert set(cell["alerts"]) == {"fired", "by_rule"}
        heavy = next(c for c in doc["cells"] if c["profile"] == "heavy")
        assert heavy["alerts"]["fired"] >= 1

    def test_render_shows_alert_column(self, report):
        assert "Alerts" in report.render()

    def test_silent_none_cell_is_a_violation(self):
        from repro.sim.chaos import ChaosReport

        broken = ChaosReport(scale_factor=CHAOS_SF)
        broken.violations.append(
            "S=2 none: 1 alert(s) fired without injected faults")
        assert not broken.ok


class TestReport:
    def test_json_shape(self, report):
        doc = report.to_json()
        assert doc["format"] == "repro-chaos-v1"
        assert doc["scale_factor"] == CHAOS_SF
        assert doc["ok"] is True
        assert len(doc["cells"]) == 3
        cell = doc["cells"][0]
        for key in ("streams", "profile", "queries_per_hour",
                    "submitted", "completed", "shed", "rejected",
                    "updates", "breaker", "conserved"):
            assert key in cell
        json.dumps(doc)  # round-trippable

    def test_render_mentions_verdict(self, report):
        text = report.render()
        assert "Chaos sweep" in text
        assert "All invariants hold" in text
        assert "heavy" in text

    def test_cell_lookup(self, report):
        assert report.cell(2, "none").profile == "none"
        with pytest.raises(KeyError):
            report.cell(99, "none")

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            run_chaos(scale_factor=CHAOS_SF, profiles=("nope",))

    def test_violations_render_when_present(self):
        from repro.sim.chaos import ChaosReport

        broken = ChaosReport(scale_factor=CHAOS_SF)
        broken.cells.append(ChaosCell(streams=2, profile="none",
                                      conserved=False))
        broken.violations.append("S=2 none: conservation violated")
        assert not broken.ok
        assert "conservation violated" in broken.render()


class TestProfiles:
    def test_profile_severity_ordering(self):
        light = CHAOS_PROFILES["light"]
        heavy = CHAOS_PROFILES["heavy"]
        assert heavy.disk_error_every < light.disk_error_every
        assert heavy.connection_drop_every < light.connection_drop_every
        assert heavy.work_process_crash_every < \
            light.work_process_crash_every

    def test_heavy_burst_exceeds_retry_budget(self):
        from repro.sim.params import SimParams

        params = SimParams()
        # the storm must outlast the per-call retry ladder long enough
        # to produce breaker_failure_threshold consecutive failures
        needed = (params.dbif_max_retries + 1) * \
            params.breaker_failure_threshold
        assert CHAOS_PROFILES["heavy"].connection_drop_burst >= needed

    def test_default_config_is_constrained(self):
        config = default_chaos_config()
        assert config.dialog_processes == 4
        assert config.queue_capacity == 8
        assert config.queue_wait_deadline_s is not None


class TestCli:
    def test_smoke_command_json(self, tmp_path, capsys):
        from repro.__main__ import main

        out_file = tmp_path / "chaos.json"
        rc = main(["chaos", "--streams", "2", "--profile", "light",
                   "--sf", str(CHAOS_SF), "--format", "json",
                   "--chaos-out", str(out_file)])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "repro-chaos-v1"
        assert json.loads(out_file.read_text()) == doc

    def test_text_output(self, capsys):
        from repro.__main__ import main

        rc = main(["chaos", "--streams", "2", "--profile", "none",
                   "--sf", str(CHAOS_SF)])
        assert rc == 0
        assert "Chaos sweep" in capsys.readouterr().out

    def test_bad_streams_value(self, capsys):
        from repro.__main__ import main

        assert main(["chaos", "--streams", "two"]) == 2
        assert main(["chaos", "--streams", "0"]) == 2

    def test_chrome_format_rejected(self, capsys):
        from repro.__main__ import main

        assert main(["chaos", "--format", "chrome"]) == 2

    def test_unknown_profile_value_rejected(self, capsys):
        from repro.__main__ import main

        assert main(["chaos", "--profile", "nope"]) == 2
        assert "unknown --profile" in capsys.readouterr().err
