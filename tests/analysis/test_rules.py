"""Rule-level tests: each rule fires on its target and stays quiet
on the corrected form of the same statement."""

import textwrap

import pytest

from repro.analysis.costmodel import SchemaInfo
from repro.analysis.extractor import analyze_module
from repro.analysis.rules import (
    collect_conjuncts,
    predicate_fingerprint,
    run_rules,
)
from repro.r3.opensql.parser import parse_open_sql


@pytest.fixture(scope="module")
def schema():
    return SchemaInfo(scale_factor=1.0)


@pytest.fixture()
def lint(tmp_path, schema):
    def run(source: str, name: str = "open22_case.py"):
        path = tmp_path / name
        path.write_text(textwrap.dedent(source))
        return run_rules([analyze_module(path)], schema)

    return run


def rules_of(findings):
    return {f.rule for f in findings}


def test_r001_select_in_loop(lint):
    findings = lint("""
        def q(r3):
            for infnr, in r3.open_sql.select(
                    "SELECT infnr FROM eina").rows:
                r3.open_sql.select_single(
                    "SELECT SINGLE netpr FROM eine "
                    "WHERE infnr = :i", {"i": infnr})
    """)
    (f,) = [f for f in findings if f.rule == "R001"]
    assert f.severity == "error"  # ~800k probes at SF 1
    assert f.estimate["db_calls"] >= 100_000


def test_r001_quiet_without_loop(lint):
    findings = lint("""
        def q(r3):
            r3.open_sql.select_single(
                "SELECT SINGLE netpr FROM eine WHERE infnr = :i "
                "AND ekorg = :e AND esokz = :s AND werks = :w",
                {"i": 1, "e": 1, "s": 1, "w": 1})
    """)
    assert "R001" not in rules_of(findings)


def test_r002_select_star(lint):
    findings = lint("""
        def q(r3):
            return r3.open_sql.select("SELECT * FROM vbak")
    """)
    (f,) = [f for f in findings if f.rule == "R002"]
    assert f.estimate["columns"] == len(
        SchemaInfo().lookup("vbak").field_names)


def test_r002_quiet_on_narrow_list(lint):
    findings = lint("""
        def q(r3):
            return r3.open_sql.select(
                "SELECT vbeln audat FROM vbak WHERE vbeln = :v",
                {"v": 1})
    """)
    assert "R002" not in rules_of(findings)


def test_r003_missing_prefix_fires_and_indexed_is_quiet(lint):
    findings = lint("""
        def scan(r3):
            return r3.open_sql.select(
                "SELECT name1 FROM kna1 WHERE brsch = 'STEEL'")

        def probe(r3):
            return r3.open_sql.select(
                "SELECT name1 FROM kna1 WHERE land1 = 'DE'")
    """)
    r003 = [f for f in findings if f.rule == "R003"]
    assert [f.func for f in r003] == ["scan"]


def test_r003_ignores_small_tables(lint):
    findings = lint("""
        def q(r3):
            return r3.open_sql.select("SELECT land1 landx FROM t005t")
    """)
    assert "R003" not in rules_of(findings)


def test_r004_host_range_on_indexed_column(lint):
    findings = lint("""
        def trapped(r3):
            return r3.open_sql.select(
                "SELECT vbeln FROM vbak WHERE audat >= :lo",
                {"lo": 1})

        def literal(r3):
            return r3.open_sql.select(
                "SELECT vbeln FROM vbak WHERE audat >= '1994-01-01'")
    """)
    r004 = [f for f in findings if f.rule == "R004"]
    assert [f.func for f in r004] == ["trapped"]
    assert "plan_fingerprint" in r004[0].estimate


def test_r005_pushable_fold_fires(lint):
    findings = lint("""
        def q13(r3):
            rows = r3.open_sql.select(
                "SELECT prior netwr FROM vbak WHERE audat >= :lo",
                {"lo": 1})
            return group_aggregate(
                r3, rows.rows, lambda g: (g[0],),
                lambda key, group: key + (len(group),
                                          sum(g[1] for g in group)))
    """)
    assert "R005" in rules_of(findings)


def test_r005_quiet_when_pushed_or_arithmetic(lint):
    findings = lint("""
        def pushed(r3):
            return r3.open_sql.select(
                "SELECT prior COUNT( * ) SUM( netwr ) FROM vbak "
                "GROUP BY prior")

        def arithmetic(r3):
            rows = r3.open_sql.select(
                "SELECT prior netwr kbetr FROM vbak "
                "WHERE audat >= :lo", {"lo": 1})
            return group_aggregate(
                r3, rows.rows, lambda g: (g[0],),
                lambda key, group: key + (
                    sum(g[1] * (1 + g[2]) for g in group),))
    """)
    assert "R005" not in rules_of(findings)


def test_r006_cluster_decode_release_gate(lint):
    source = """
        from repro.reports.common import KonvLookup

        def q(r3):
            konv = KonvLookup(r3)
            for vbeln, knumv in r3.open_sql.select(
                    "SELECT vbeln knumv FROM vbak").rows:
                konv.disc(knumv, 1)
    """
    in_22 = lint(source, name="open22_case.py")
    assert "R006" in rules_of(in_22)
    # Same code under the 3.0 install: KONV is transparent there.
    in_30 = lint(source, name="open30_case.py")
    assert "R006" not in rules_of(in_30)


def test_r007_partial_key_single(lint):
    findings = lint("""
        def partial(r3):
            return r3.open_sql.select_single(
                "SELECT SINGLE netpr FROM eine WHERE infnr = :i",
                {"i": 1})

        def full(r3):
            return r3.open_sql.select_single(
                "SELECT SINGLE knumv FROM vbak WHERE vbeln = :v",
                {"v": 1})
    """)
    r007 = [f for f in findings if f.rule == "R007"]
    assert [f.func for f in r007] == ["partial"]


def test_r008_parse_error(lint):
    findings = lint("""
        def q(r3):
            return r3.open_sql.select("SELECT FROM mara")
    """)
    (f,) = [f for f in findings if f.rule == "R008"]
    assert "fails to parse" in f.message


def test_r009_full_table_report_on_partitionable_table(lint):
    findings = lint("""
        def report(r3):
            return r3.open_sql.select(
                "SELECT matnr kwmeng FROM vbap WHERE kwmeng < :q",
                {"q": 24})
    """)
    (f,) = [f for f in findings if f.rule == "R009"]
    assert f.severity == "info"
    assert "--degree" in f.message
    assert f.estimate["suggested_degree"] >= 2
    assert f.estimate["rows_scanned"] > 0


def test_r009_quiet_on_indexed_probe_and_small_table(lint):
    findings = lint("""
        def probe(r3):
            return r3.open_sql.select(
                "SELECT posnr FROM vbap WHERE vbeln = :v", {"v": 1})

        def single(r3):
            return r3.open_sql.select_single(
                "SELECT SINGLE knumv FROM vbak WHERE vbeln = :v",
                {"v": 1})

        def tiny(r3):
            return r3.open_sql.select("SELECT land1 landx FROM t005t")
    """)
    assert "R009" not in rules_of(findings)


def test_findings_ranked_by_severity(lint):
    findings = lint("""
        def big(r3):
            for infnr, in r3.open_sql.select(
                    "SELECT infnr FROM eina").rows:
                r3.open_sql.select_single(
                    "SELECT SINGLE netpr FROM eine "
                    "WHERE infnr = :i", {"i": infnr})

        def small(r3):
            return r3.open_sql.select_single(
                "SELECT SINGLE netpr FROM eine WHERE infnr = :i",
                {"i": 1})
    """)
    severities = [f.severity for f in findings]
    assert severities == sorted(
        severities, key=("error", "warning", "info").index)
    assert all(f.key for f in findings)
    assert len({f.key for f in findings}) == len(findings)


# -- helpers ---------------------------------------------------------------


def test_collect_conjuncts_join_and_or(schema):
    stmt = parse_open_sql(
        "SELECT p~posnr FROM vbap AS p "
        "INNER JOIN vbep AS e ON e~vbeln = p~vbeln "
        "WHERE e~edatu >= :lo AND ( p~netwr > 100 OR p~kwmeng < 5 )"
    )
    conjuncts = collect_conjuncts(stmt)
    tables = {(c.table, c.column, c.from_on) for c in conjuncts}
    assert ("vbep", "edatu", False) in tables
    assert ("vbep", "vbeln", True) in tables
    assert ("vbap", "vbeln", True) in tables
    # The OR branch must not contribute sargable conjuncts.
    assert not any(c.column in ("netwr", "kwmeng") for c in conjuncts)


def test_predicate_fingerprint_matches_shared_plan(schema):
    lo = parse_open_sql("SELECT vbeln FROM vbak WHERE audat >= :lo")
    hi = parse_open_sql("SELECT vbeln FROM vbak WHERE audat >= '1994'")
    literal_93 = parse_open_sql(
        "SELECT vbeln FROM vbak WHERE audat >= '1993'")
    # Host variable and literal translate to the same ? marker plan —
    # that is exactly why the optimizer cannot tell them apart.
    assert predicate_fingerprint(lo, schema) == \
        predicate_fingerprint(hi, schema)
    assert predicate_fingerprint(hi, schema) == \
        predicate_fingerprint(literal_93, schema)
    different = parse_open_sql(
        "SELECT vbeln FROM vbak WHERE audat >= :lo AND netwr > :n")
    assert predicate_fingerprint(different, schema) != \
        predicate_fingerprint(lo, schema)


def test_r010_abap_sort_over_select(lint):
    findings = lint("""
        def q(r3):
            rows = r3.open_sql.select("SELECT lifnr land1 FROM lfa1")
            return sorted(rows.rows)
    """)
    (f,) = [f for f in findings if f.rule == "R010"]
    assert "ORDER BY" in f.message
    assert f.estimate["rows_shipped"] > 0


def test_r010_quiet_when_engine_already_orders(lint):
    findings = lint("""
        def q(r3):
            rows = r3.open_sql.select(
                "SELECT lifnr land1 FROM lfa1 ORDER BY lifnr")
            return sorted(rows.rows)
    """)
    assert "R010" not in rules_of(findings)


def test_r010_quiet_on_untraceable_source(lint):
    findings = lint("""
        def q(r3, records):
            return sorted(records)
    """)
    assert "R010" not in rules_of(findings)
