"""Extractor unit tests over small synthetic report modules."""

import textwrap

import pytest

from repro.analysis.extractor import analyze_module, infer_release


@pytest.fixture()
def analyze(tmp_path):
    def run(source: str, name: str = "open22_sample.py"):
        path = tmp_path / name
        path.write_text(textwrap.dedent(source))
        return analyze_module(path)

    return run


def test_toplevel_select_site(analyze):
    analysis = analyze("""
        def q(r3):
            rows = r3.open_sql.select(
                "SELECT matnr FROM mara WHERE mtart = :t", {"t": "X"})
            return rows
    """)
    (site,) = analysis.sites
    assert site.api == "select"
    assert site.loop_depth == 0
    assert not site.memoized
    assert site.host_vars == ("t",)
    assert site.var_name == "rows"
    assert site.stmt is not None and site.stmt.table == "mara"


def test_loop_depth_and_source_tracking(analyze):
    analysis = analyze("""
        def q(r3):
            orders = r3.open_sql.select("SELECT vbeln FROM vbak")
            for vbeln, in orders.rows:
                for row in r3.open_sql.select(
                        "SELECT posnr FROM vbap WHERE vbeln = :v",
                        {"v": vbeln}).rows:
                    inner = r3.open_sql.select_single(
                        "SELECT SINGLE netpr FROM eine "
                        "WHERE infnr = :i", {"i": row})
    """)
    by_table = {s.stmt.table: s for s in analysis.sites}
    assert by_table["vbak"].loop_depth == 0
    # The vbap select is the second loop's own fetch: it runs once per
    # vbak row, i.e. at depth 1, sourced from the vbak statement.
    assert by_table["vbap"].loop_depth == 1
    assert by_table["vbap"].outer[0] is by_table["vbak"]
    assert by_table["eine"].loop_depth == 2
    assert by_table["eine"].outer[1] is by_table["vbap"]


def test_memo_guard_detected(analyze):
    analysis = analyze("""
        def q(r3):
            cache = {}
            for key in work:
                if key not in cache:
                    cache[key] = r3.open_sql.select_single(
                        "SELECT SINGLE name1 FROM lfa1 "
                        "WHERE lifnr = :k", {"k": key})
                plain = r3.open_sql.select_single(
                    "SELECT SINGLE land1 FROM kna1 "
                    "WHERE kunnr = :k", {"k": key})
    """)
    by_table = {s.stmt.table: s for s in analysis.sites}
    assert by_table["lfa1"].memoized
    assert not by_table["kna1"].memoized


def test_module_constant_and_fstring_resolution(analyze):
    analysis = analyze("""
        _JOIN = ("FROM vbap AS p "
                 "INNER JOIN vbep AS e ON e~vbeln = p~vbeln")

        class _Memo:
            def get(self, vbeln):
                if vbeln != self._vbeln:
                    self._row = self._r3.open_sql.select_single(
                        f"SELECT SINGLE {self._fields} FROM vbak "
                        f"WHERE vbeln = :v", {"v": vbeln})
                return self._row

        def q(r3):
            return r3.open_sql.select(
                "SELECT p~posnr " + _JOIN + " WHERE e~edatu <= :d",
                {"d": None})
    """)
    memo_site = next(s for s in analysis.sites if s.func == "_Memo.get")
    assert memo_site.dynamic
    assert memo_site.memoized
    assert memo_site.stmt is not None  # dynfld placeholder still parses
    assert memo_site.stmt.table == "vbak"
    join_site = next(s for s in analysis.sites if s.func == "q")
    assert not join_site.dynamic
    assert join_site.stmt.has_joins
    assert join_site.stmt.joins[0].table == "vbep"


def test_wrapper_call_idiom(analyze):
    analysis = analyze("""
        class _Memo:
            def get(self, key):
                if key != self._key:
                    self._row = self._r3.open_sql.select_single(
                        "SELECT SINGLE knumv FROM vbak "
                        "WHERE vbeln = :v", {"v": key})
                return self._row

        def q(r3):
            memo = _Memo()
            for key in work:
                memo.get(key)
    """)
    (idiom,) = [i for i in analysis.idioms if i.kind == "wrapper_call"]
    assert idiom.loop_depth == 1
    assert idiom.memoized
    assert idiom.source is not None and idiom.source.stmt.table == "vbak"


def test_konv_lookup_idiom(analyze):
    analysis = analyze("""
        from repro.reports.common import KonvLookup

        def q(r3):
            konv = KonvLookup(r3)
            for row in rows:
                konv.disc(row, 1)
    """)
    (idiom,) = [i for i in analysis.idioms if i.kind == "konv_lookup"]
    assert idiom.loop_depth == 1
    assert idiom.detail == "KonvLookup.disc"


def test_group_aggregate_fold_classification(analyze):
    analysis = analyze("""
        def q_simple(r3):
            rows = r3.open_sql.select("SELECT prior netwr FROM vbak")
            return group_aggregate(
                r3, rows.rows, lambda g: (g[0],),
                lambda key, group: key + (len(group),
                                          sum(g[1] for g in group)))

        def q_arith(r3):
            rows = r3.open_sql.select("SELECT prior netwr FROM vbak")
            return group_aggregate(
                r3, rows.rows, lambda g: (g[0],),
                lambda key, group: key + (
                    sum(g[1] * 2 for g in group),))
    """)
    idioms = {i.func: i for i in analysis.idioms}
    assert idioms["q_simple"].simple_fold
    assert idioms["q_simple"].source is not None
    assert not idioms["q_arith"].simple_fold


def test_parse_error_recorded(analyze):
    analysis = analyze("""
        def q(r3):
            return r3.open_sql.select("SELECT FROM mara")
    """)
    (site,) = analysis.sites
    assert site.stmt is None
    assert site.parse_error


def test_release_inference():
    assert infer_release("open22") == "2.2"
    assert infer_release("native22") == "2.2"
    assert infer_release("open30") == "3.0"
    assert infer_release("rdbms") == "3.0"
    assert infer_release("common") is None


def test_decorated_function_still_analyzed(analyze):
    analysis = analyze("""
        import functools

        def traced(fn):
            return fn

        @traced
        @functools.lru_cache(maxsize=None)
        def q(r3):
            return r3.open_sql.select(
                "SELECT matnr FROM mara WHERE mtart = :t", {"t": "X"})
    """)
    (site,) = analysis.sites
    assert site.func == "q"
    assert site.stmt is not None and site.stmt.table == "mara"


def test_nested_function_sites_are_attributed(analyze):
    analysis = analyze("""
        def q(r3):
            def probe(matnr):
                return r3.open_sql.select_single(
                    "SELECT SINGLE mtart FROM mara WHERE matnr = :m",
                    {"m": matnr})
            rows = r3.open_sql.select("SELECT matnr FROM mara")
            return [probe(m) for m, in rows.rows]
    """)
    tables = {s.stmt.table for s in analysis.sites if s.stmt}
    assert tables == {"mara"}
    assert len(analysis.sites) == 2


def test_fstring_format_spec_stays_dynamic(analyze):
    analysis = analyze("""
        def q(r3, width):
            return r3.open_sql.select(
                f"SELECT matnr FROM mara WHERE mfrpn LIKE '{width:>8}'")

        def q_conv(r3, part):
            return r3.open_sql.select(
                f"SELECT matnr FROM mara WHERE mfrpn LIKE {part!r}")
    """)
    by_func = {s.func: s for s in analysis.sites}
    for func in ("q", "q_conv"):
        site = by_func[func]
        assert site.dynamic
        # The marker keeps the statement parseable and the normalised
        # text recorded for fingerprinting.
        assert site.sql_src
        assert site.stmt is not None and site.stmt.table == "mara"


def test_abap_sort_idiom_extracted(analyze):
    analysis = analyze("""
        def q(r3):
            rows = r3.open_sql.select("SELECT lifnr land1 FROM lfa1")
            return sorted(rows.rows)
    """)
    (idiom,) = [i for i in analysis.idioms if i.kind == "abap_sort"]
    assert idiom.func == "q"
    assert idiom.source is not None
    assert idiom.source.stmt.table == "lfa1"
    assert "lfa1" in idiom.detail


def test_abap_sort_over_group_aggregate(analyze):
    analysis = analyze("""
        def q(r3):
            rows = r3.open_sql.select("SELECT prior netwr FROM vbak")
            return sorted(group_aggregate(
                r3, rows.rows, lambda g: (g[0],),
                lambda key, group: key + (len(group),)))
    """)
    (idiom,) = [i for i in analysis.idioms if i.kind == "abap_sort"]
    assert idiom.source is not None
    assert idiom.source.stmt.table == "vbak"
