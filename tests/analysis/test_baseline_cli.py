"""Baseline semantics and the ``python -m repro lint`` entry point."""

import json
import textwrap

from repro.__main__ import main
from repro.analysis.baseline import Baseline, default_baseline_path
from repro.analysis.cli import run_lint

LOOPING = """
    def q(r3):
        for infnr, in r3.open_sql.select(
                "SELECT infnr FROM eina").rows:
            r3.open_sql.select_single(
                "SELECT SINGLE netpr FROM eine WHERE infnr = :i",
                {"i": infnr})
"""

CLEAN = """
    def q(r3):
        return r3.open_sql.select(
            "SELECT name1 FROM kna1 WHERE land1 = 'DE'")
"""


def _write(tmp_path, source, name="open22_case.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


def test_exit_one_on_new_findings(tmp_path):
    path = _write(tmp_path, LOOPING)
    out = []
    status = run_lint([path], use_baseline=False, emit=out.append)
    assert status == 1
    assert "R001" in out[0]


def test_exit_zero_when_clean(tmp_path):
    path = _write(tmp_path, CLEAN)
    status = run_lint([path], use_baseline=False, emit=lambda _s: None)
    assert status == 0


def test_baseline_suppresses_but_counts(tmp_path):
    path = _write(tmp_path, LOOPING)
    baseline_file = tmp_path / "baseline.json"
    out = []
    assert run_lint([path], baseline_path=baseline_file,
                    write_baseline=True, emit=out.append) == 0
    assert baseline_file.exists()

    out = []
    status = run_lint([path], output_format="json",
                      baseline_path=baseline_file, emit=out.append)
    assert status == 0
    payload = json.loads(out[0])
    assert payload["summary"]["new"] == 0
    assert payload["summary"]["baselined"] == payload["summary"]["total"]
    assert payload["summary"]["total"] > 0
    assert all(f["baselined"] for f in payload["findings"])


def test_new_finding_breaks_through_baseline(tmp_path):
    path = _write(tmp_path, LOOPING)
    baseline_file = tmp_path / "baseline.json"
    run_lint([path], baseline_path=baseline_file, write_baseline=True,
             emit=lambda _s: None)
    # A second, previously unseen anti-pattern appears in the module.
    path.write_text(path.read_text() + textwrap.dedent("""
        def q_new(r3):
            return r3.open_sql.select("SELECT * FROM vbak")
    """))
    out = []
    status = run_lint([path], output_format="json",
                      baseline_path=baseline_file, emit=out.append)
    assert status == 1
    payload = json.loads(out[0])
    fresh = [f for f in payload["findings"] if not f["baselined"]]
    assert {f["func"] for f in fresh} == {"q_new"}


def test_baseline_roundtrip(tmp_path):
    baseline = Baseline({"R001:m:f:abc": "note"})
    target = tmp_path / "b.json"
    baseline.save(target)
    loaded = Baseline.load(target)
    assert loaded.entries == baseline.entries
    assert Baseline.load(tmp_path / "missing.json").entries == {}


def test_cli_main_lint_with_committed_baseline():
    # The repo gate: default paths + committed baseline must be green.
    assert default_baseline_path().exists()
    assert main(["lint"]) == 0


def test_cli_main_lint_json_no_baseline_fails(tmp_path, capsys):
    path = _write(tmp_path, LOOPING)
    status = main(["lint", str(path), "--format=json", "--no-baseline"])
    assert status == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["new"] == payload["summary"]["total"]


def test_missing_baseline_exits_two(tmp_path, capsys):
    path = _write(tmp_path, LOOPING)
    status = run_lint([path], baseline_path=tmp_path / "absent.json",
                      emit=lambda _s: None)
    assert status == 2
    err = capsys.readouterr().err
    assert "missing" in err and "--write-baseline" in err


def test_unreadable_baseline_exits_two(tmp_path, capsys):
    path = _write(tmp_path, LOOPING)
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{not json")
    status = run_lint([path], baseline_path=corrupt,
                      emit=lambda _s: None)
    assert status == 2
    assert "unreadable" in capsys.readouterr().err


def test_cli_main_missing_baseline_exits_two(tmp_path):
    path = _write(tmp_path, LOOPING)
    status = main(["lint", str(path),
                   f"--baseline={tmp_path / 'absent.json'}"])
    assert status == 2


def test_fingerprints_survive_line_drift(tmp_path):
    """Inserting blank lines above every finding site must not churn
    a single baseline key — fingerprints follow content, not lines."""
    from repro.analysis.costmodel import SchemaInfo
    from repro.analysis.extractor import analyze_module
    from repro.analysis.rules import run_rules

    schema = SchemaInfo(scale_factor=1.0)
    path = _write(tmp_path, LOOPING)
    before = {f.key for f in run_rules([analyze_module(path)], schema)}
    assert before

    drifted = textwrap.dedent(LOOPING).replace("\n", "\n\n")
    path.write_text("# a leading comment\n\n" + drifted)
    after = {f.key for f in run_rules([analyze_module(path)], schema)}
    assert after == before
