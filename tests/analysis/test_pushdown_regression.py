"""Rule-level regression over the real report families.

The 2.2 reports *must* trip the paper's anti-patterns (that is the
experiment) and the 3.0 reports must not trip the pushdown rules —
their joins and aggregates are pushed into the database.  If either
direction drifts, the repo's 2.2-vs-3.0 comparison no longer measures
what the paper measured.
"""

from pathlib import Path

import pytest

import repro.reports
from repro.analysis.costmodel import SchemaInfo
from repro.analysis.extractor import analyze_paths
from repro.analysis.rules import run_rules

REPORTS = Path(repro.reports.__file__).resolve().parent


@pytest.fixture(scope="module")
def findings_by_module():
    analyses = analyze_paths([REPORTS])
    findings = run_rules(analyses, SchemaInfo(scale_factor=1.0))
    grouped: dict[str, list] = {}
    for finding in findings:
        grouped.setdefault(finding.module, []).append(finding)
    return grouped


def rules_in(findings_by_module, module):
    return {f.rule for f in findings_by_module.get(module, [])}


def test_open22_fires_nested_select_join(findings_by_module):
    q2_join = [
        f for f in findings_by_module["open22"]
        if f.rule == "R001" and f.func == "q2" and "eine" in f.message
    ]
    assert q2_join, "open22 q2 must show the nested-SELECT join"
    assert q2_join[0].severity == "error"


def test_open22_fires_extract_sort_grouping(findings_by_module):
    r005 = [f for f in findings_by_module["open22"] if f.rule == "R005"]
    assert any(f.func == "q13" for f in r005), \
        "open22 q13 must show ABAP-side grouping of a raw SELECT"


def test_open22_fires_cluster_decode(findings_by_module):
    assert "R006" in rules_in(findings_by_module, "open22")


def test_open30_pushdown_rules_do_not_fire(findings_by_module):
    # Joins are pushed (no R005 grouping-in-ABAP finding) and KONV is
    # transparent in the 3.0 install (no R006 cluster decode).
    open30 = rules_in(findings_by_module, "open30")
    assert "R005" not in open30
    assert "R006" not in open30


def test_open30_keeps_only_correlated_probe_loops(findings_by_module):
    # 3.0 Open SQL still has no correlated subqueries: q15's top-
    # supplier probe and q17's per-part average are genuine residual
    # loops; nothing else in open30 may SELECT inside a loop.
    loops = {
        f.func for f in findings_by_module["open30"]
        if f.rule == "R001"
    }
    assert loops == {"q15", "q17"}


def test_rdbms_reports_are_clean(findings_by_module):
    # The plain-RDBMS family delegates to repro.tpcd.queries — there
    # is no Open SQL in it at all, so the analyzer finds nothing.
    assert rules_in(findings_by_module, "rdbms") == set()


def test_native_families_skip_abap_aggregation_rule(findings_by_module):
    # Native SQL may aggregate in any release; R005 must never fire on
    # the EXEC SQL variants even though they also use group_aggregate.
    assert "R005" not in rules_in(findings_by_module, "native22")
    assert "R005" not in rules_in(findings_by_module, "native30")


def test_catalogue_coverage_over_reports(findings_by_module):
    fired_rules = {
        f.rule
        for findings in findings_by_module.values()
        for f in findings
    }
    assert fired_rules >= {"R001", "R003", "R004", "R005", "R006",
                           "R007"}, fired_rules
