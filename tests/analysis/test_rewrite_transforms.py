"""Rewrite transformer unit tests over small synthetic reports.

Each transform is exercised on its target shape (must apply, and the
rewritten source must carry the pushed-down SQL) and on a near-miss
variant (must refuse, with a reason naming the violated precondition).
"""

import textwrap

import pytest

from repro.analysis.costmodel import SchemaInfo
from repro.analysis.rewrite.planner import plan_module
from repro.analysis.rewrite.render import render_select
from repro.r3.opensql.parser import parse_open_sql


@pytest.fixture(scope="module")
def schema():
    return SchemaInfo(scale_factor=0.01)


@pytest.fixture()
def plan(tmp_path, schema):
    def run(source: str, name: str = "open22_case.py"):
        path = tmp_path / name
        path.write_text(textwrap.dedent(source))
        return plan_module(path, schema)

    return run


def kinds_of(module):
    return {a.kind for a in module.applied}


def reasons_of(module):
    return " | ".join(r.reason for r in module.refusals)


# -- renderer ---------------------------------------------------------------


ROUND_TRIPS = [
    "SELECT matnr mtart FROM mara WHERE mtart = :t",
    "SELECT SINGLE netpr FROM eine WHERE infnr = :i AND ekorg = '1000'",
    "SELECT lifnr FROM lfa1 WHERE land1 IN ( 'DE', 'FR' ) "
    "ORDER BY lifnr",
    "SELECT prior COUNT( * ) SUM( netwr ) FROM vbak "
    "GROUP BY prior ORDER BY prior",
    "SELECT matnr FROM mara WHERE mfrpn LIKE :p AND ntgew >= 10.5 "
    "UP TO 5 ROWS",
]


@pytest.mark.parametrize("text", ROUND_TRIPS)
def test_render_parse_round_trip(text):
    rendered = render_select(parse_open_sql(text))
    # Rendering is a fixed point: parse-back yields the same text.
    assert render_select(parse_open_sql(rendered)) == rendered


# -- R001 join merge --------------------------------------------------------


MERGE_UNUSED = """
    def q(r3):
        out = []
        for infnr, matnr in r3.open_sql.select(
                "SELECT infnr matnr FROM eina").rows:
            price = r3.open_sql.select_single(
                "SELECT SINGLE netpr FROM eine WHERE infnr = :i",
                {"i": infnr})
            out.append((matnr, price[0]))
        return out
"""


def test_merge_applies_on_unused_none_discipline(plan):
    module = plan(MERGE_UNUSED)
    (applied,) = module.applied
    assert applied.rule == "R001" and applied.kind == "join_merge"
    assert applied.table == "eine"
    assert "INNER JOIN eine" in module.rewritten_source
    # The probe variable is rebound from the widened outer row, so the
    # body keeps reading ``price[0]`` unchanged.
    assert "price[0]" in module.rewritten_source


def test_merge_applies_on_none_filter(plan):
    module = plan(MERGE_UNUSED.replace(
        "out.append((matnr, price[0]))",
        "if price is None:\n"
        "                continue\n"
        "            out.append((matnr, price[0]))",
    ))
    assert kinds_of(module) == {"join_merge"}


def test_merge_applies_on_trailing_not_none_guard(plan):
    module = plan("""
        def q(r3):
            out = []
            for infnr, matnr in r3.open_sql.select(
                    "SELECT infnr matnr FROM eina").rows:
                price = r3.open_sql.select_single(
                    "SELECT SINGLE netpr FROM eine WHERE infnr = :i",
                    {"i": infnr})
                if price is not None and price[0] > 100.0:
                    out.append((matnr, price[0]))
            return out
    """)
    assert kinds_of(module) == {"join_merge"}


def test_merge_refuses_handled_none(plan):
    module = plan(MERGE_UNUSED.replace(
        "out.append((matnr, price[0]))",
        "out.append((matnr, 0.0 if price is None else price[0]))",
    ))
    # The merge refuses; R007 still buffers the probe as a fallback.
    assert "join_merge" not in kinds_of(module)
    assert "drop rows" in reasons_of(module)


def test_merge_refuses_impure_preamble(plan):
    module = plan(MERGE_UNUSED.replace(
        "price = r3.open_sql.select_single",
        "log(matnr)\n"
        "            price = r3.open_sql.select_single",
    ))
    assert "join_merge" not in kinds_of(module)
    assert "side effects" in reasons_of(module)


def test_merge_refuses_non_unique_probe(plan, tmp_path, schema):
    # vbap's key is (vbeln, posnr); binding only a non-key column
    # cannot prove a unique match, so the merge must refuse.
    module = plan("""
        def q(r3):
            out = []
            for vbeln, in r3.open_sql.select(
                    "SELECT vbeln FROM vbak").rows:
                item = r3.open_sql.select_single(
                    "SELECT SINGLE netpr FROM vbap WHERE matnr = :m",
                    {"m": vbeln})
                out.append(item[0])
            return out
    """)
    assert not module.applied
    assert "unique" in reasons_of(module)


def test_multi_row_inner_select_refused_not_merged(plan):
    module = plan("""
        def q(r3):
            out = []
            for infnr, in r3.open_sql.select(
                    "SELECT infnr FROM eina").rows:
                prices = r3.open_sql.select(
                    "SELECT netpr FROM eine WHERE infnr = :i",
                    {"i": infnr})
                out.extend(prices.rows)
            return out
    """)
    assert not module.applied
    assert "multiple rows" in reasons_of(module)


# -- R001 hoist -------------------------------------------------------------


def test_loop_invariant_select_is_hoisted(plan):
    module = plan("""
        def q(r3):
            out = []
            for matnr, in r3.open_sql.select(
                    "SELECT matnr FROM mara").rows:
                suppliers = r3.open_sql.select(
                    "SELECT lifnr FROM lfa1")
                out.append((matnr, len(suppliers.rows)))
            return out
    """)
    (applied,) = module.applied
    assert applied.kind == "hoist"
    # The hoisted assignment now precedes the loop.
    body = module.rewritten_source
    assert body.index("suppliers = ") < body.index("for matnr")


def test_loop_dependent_select_is_not_hoisted(plan):
    module = plan("""
        def q(r3):
            out = []
            for land1, in r3.open_sql.select(
                    "SELECT land1 FROM t005").rows:
                names = r3.open_sql.select(
                    "SELECT name1 FROM kna1 WHERE land1 = :c",
                    {"c": land1})
                out.extend(names.rows)
            return out
    """)
    assert "hoist" not in kinds_of(module)


# -- R005 group pushdown ----------------------------------------------------


GROUPED = """
    from repro.r3.abap import group_aggregate

    def q(r3):
        rows = r3.open_sql.select(
            "SELECT prior netwr FROM vbak WHERE netwr > :minval",
            {"minval": 250000.0})
        return sorted(group_aggregate(
            r3, rows.rows, lambda g: (g[0],),
            lambda key, group: key + (len(group),
                                      sum(g[1] for g in group)),
        ))
"""


def test_group_aggregate_pushed_to_group_by(plan):
    module = plan(GROUPED)
    rules = {a.rule for a in module.applied}
    assert rules == {"R005", "R010"}  # chained sorted() subsumption
    src = module.rewritten_source
    assert "GROUP BY prior" in src
    assert "COUNT( * )" in src and "SUM( netwr )" in src
    assert "group_aggregate" not in src.split("def q")[1]


def test_group_pushdown_renders_avg(plan):
    module = plan(GROUPED.replace(
        "key + (len(group),\n"
        "                                      sum(g[1] for g in group))",
        "key + (sum(g[1] for g in group) / len(group),)",
    ))
    assert "R005" in {a.rule for a in module.applied}
    assert "AVG( netwr )" in module.rewritten_source


def test_group_pushdown_skips_opaque_fold(plan):
    module = plan(GROUPED.replace(
        "key + (len(group),\n"
        "                                      sum(g[1] for g in group))",
        "fold_elsewhere(key, group)",
    ))
    assert "group_pushdown" not in kinds_of(module)


# -- R010 order pushdown ----------------------------------------------------


def test_sorted_over_select_becomes_order_by(plan):
    module = plan("""
        def q(r3):
            rows = r3.open_sql.select("SELECT lifnr land1 FROM lfa1")
            return sorted(rows.rows)
    """)
    (applied,) = module.applied
    assert applied.rule == "R010" and applied.kind == "order_pushdown"
    assert "ORDER BY lifnr land1" in module.rewritten_source


def test_order_pushdown_refuses_up_to(plan):
    module = plan("""
        def q(r3):
            rows = r3.open_sql.select(
                "SELECT lifnr land1 FROM lfa1 UP TO 5 ROWS")
            return sorted(rows.rows)
    """)
    assert not module.applied
    assert "UP TO" in reasons_of(module)


def test_order_pushdown_refuses_other_uses(plan):
    module = plan("""
        def q(r3):
            rows = r3.open_sql.select("SELECT lifnr land1 FROM lfa1")
            first = rows.rows[0]
            return first, sorted(rows.rows)
    """)
    assert not module.applied
    assert "used elsewhere" in reasons_of(module)


# -- R007 full-key completion -----------------------------------------------


def test_partial_key_completed_with_installation_constants(plan):
    module = plan("""
        def q(r3):
            return r3.open_sql.select_single(
                "SELECT SINGLE netpr FROM eine WHERE infnr = :i",
                {"i": "IR0000042"})
    """)
    (applied,) = module.applied
    assert applied.rule == "R007" and applied.kind == "full_key"
    src = module.rewritten_source
    assert "ekorg = '1000'" in src
    assert "esokz = '0'" in src and "werks = '0001'" in src
    # The buffer-activation guard lands right inside the function.
    assert "active_for" in src and "configure" in src


def test_row_specific_missing_key_refused(plan):
    module = plan("""
        def q(r3):
            return r3.open_sql.select_single(
                "SELECT SINGLE mtart FROM mara")
    """)
    assert not module.applied
    assert "row-specific" in reasons_of(module)


def test_disjunctive_where_refused(plan):
    module = plan("""
        def q(r3):
            return r3.open_sql.select_single(
                "SELECT SINGLE netpr FROM eine "
                "WHERE infnr = :i OR infnr = :j",
                {"i": "A", "j": "B"})
    """)
    assert not module.applied
    assert "disjunctive" in reasons_of(module)


# -- ledger hygiene ---------------------------------------------------------


def test_every_refusal_carries_a_reason(plan):
    module = plan(MERGE_UNUSED.replace(
        "out.append((matnr, price[0]))",
        "out.append((matnr, 0.0 if price is None else price[0]))",
    ))
    assert all(r.reason.strip() for r in module.refusals)


def test_rewritten_module_compiles_and_diff_is_stable(plan):
    module = plan(MERGE_UNUSED)
    compile(module.rewritten_source, "<rewritten>", "exec")
    diff = module.diff()
    assert diff.startswith("--- a/")
    assert "INNER JOIN" in diff
