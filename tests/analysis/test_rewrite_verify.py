"""Integration: the rewriter over the real open22 family.

Planning must land the issue's three headline rules (R001, R005,
R007) on the shipped report sources, and a differential smoke run on
the suite's shared TPC-D world must prove the rewritten queries
row-identical and no slower.
"""

import pytest

from repro.analysis.costmodel import SchemaInfo
from repro.analysis.rewrite.planner import plan_module
from repro.analysis.rewrite.verify import load_rewritten, reports_dir
from repro.core.powertest import build_sap_system
from repro.r3.appserver import R3Version
from repro.tpcd.answers import rows_match


@pytest.fixture(scope="module")
def open22_plan():
    schema = SchemaInfo(scale_factor=0.001)
    base = reports_dir()
    return (plan_module(base / "open22.py", schema),
            plan_module(base / "common.py", schema))


def test_open22_applies_three_distinct_rules(open22_plan):
    main, common = open22_plan
    rules = {a.rule for m in (main, common) for a in m.applied}
    assert {"R001", "R005", "R007"} <= rules
    # The headline merges from the issue: q2's purchasing-info probe
    # loop becomes a join, q13's fold becomes GROUP BY.
    by_func = {(a.func, a.kind) for a in main.applied}
    assert ("q2", "join_merge") in by_func
    assert ("q13", "group_pushdown") in by_func


def test_every_open22_refusal_has_a_reason(open22_plan):
    main, common = open22_plan
    for module in (main, common):
        for refusal in module.refusals:
            assert refusal.reason.strip(), refusal


def test_rewritten_sources_compile(open22_plan):
    for module in open22_plan:
        compile(module.rewritten_source, f"<{module.module}>", "exec")


def test_differential_smoke_q2_q13(open22_plan, tpcd_data):
    """Original vs rewritten on the same world: identical rows, and
    the rewritten side never slower on its own queries."""
    main, common = open22_plan
    import repro.reports.open22 as orig
    new = load_rewritten(main, [common])

    r3_a = build_sap_system(tpcd_data, R3Version.V30)
    r3_b = build_sap_system(tpcd_data, R3Version.V30)
    for number in (2, 13):
        fn_a = getattr(orig, f"q{number}")
        fn_b = getattr(new, f"q{number}")
        span = r3_a.measure()
        rows_a = fn_a(r3_a)
        orig_s = span.stop()
        span = r3_b.measure()
        rows_b = fn_b(r3_b)
        new_s = span.stop()
        assert rows_match(rows_a, rows_b, ordered=True, places=2), (
            f"q{number} rows diverge under rewrite")
        assert new_s <= orig_s * 1.05, (
            f"q{number}: rewritten {new_s:.3f}s vs original "
            f"{orig_s:.3f}s — a regression")
