"""Error-path coverage for the Open SQL parser and translator.

The static analyzer (``repro.analysis``) leans on the parser rejecting
malformed statements with a clean :class:`OpenSqlError` — a crash or a
silent mis-parse here would turn into a bogus or missing finding.
"""

import pytest

from repro.engine.types import SqlType
from repro.r3.appserver import R3System, R3Version
from repro.r3.ddic import DDicField, DDicTable, TableKind
from repro.r3.errors import OpenSqlError
from repro.r3.opensql.parser import parse_open_sql
from repro.r3.opensql.translate import translate


def parse_error(text: str) -> str:
    with pytest.raises(OpenSqlError) as excinfo:
        parse_open_sql(text)
    return str(excinfo.value)


# -- malformed field lists -------------------------------------------------


def test_empty_select_list():
    assert "empty select list" in parse_error("SELECT FROM mara")


def test_comma_in_field_list_is_not_open_sql():
    # ABAP field lists are space-separated; a comma is a bad token at
    # select-list level and must not silently parse as two fields.
    assert "empty select list" in parse_error(
        "SELECT , FROM mara")


def test_dangling_tilde_qualifier():
    with pytest.raises(OpenSqlError):
        parse_open_sql("SELECT p~ FROM vbap AS p")


def test_star_mixed_with_fields_rejected():
    assert "expected FROM" in parse_error("SELECT * matnr FROM mara")


def test_missing_from():
    assert "expected FROM" in parse_error("SELECT matnr mara")


# -- illegal aggregate arguments -------------------------------------------


def test_sum_star_rejected():
    assert "SUM(*) is not Open SQL" in parse_error(
        "SELECT SUM( * ) FROM vbak")


@pytest.mark.parametrize("agg", ["AVG", "MIN", "MAX"])
def test_star_only_counts(agg):
    assert f"{agg}(*) is not Open SQL" in parse_error(
        f"SELECT {agg}( * ) FROM vbak")


def test_aggregate_requires_parenthesis():
    assert "expected ( after SUM" in parse_error(
        "SELECT SUM netwr FROM vbak")


def test_aggregate_rejects_arithmetic_argument():
    # No expressions inside aggregates — the 2.2/3.0 grammar gap the
    # paper's Section 4.2 is about.
    assert "expected ) in aggregate" in parse_error(
        "SELECT SUM( netwr * 2 ) FROM vbak")


def test_aggregate_unclosed():
    assert "expected ) in aggregate" in parse_error(
        "SELECT SUM( netwr FROM vbak")


# -- predicates and joins --------------------------------------------------


def test_predicate_without_comparison():
    assert "expected a predicate after matnr" in parse_error(
        "SELECT matnr FROM mara WHERE matnr")


def test_in_list_requires_parens():
    assert "expected ( after IN" in parse_error(
        "SELECT matnr FROM mara WHERE mtart IN 'A', 'B'")


def test_unclosed_in_list():
    assert "expected ) after IN list" in parse_error(
        "SELECT matnr FROM mara WHERE mtart IN ( 'A', 'B'")


def test_join_on_requires_comparison():
    assert "expected comparison in ON" in parse_error(
        "SELECT p~matnr FROM vbap AS p "
        "INNER JOIN mara AS m ON m~matnr")


def test_up_to_requires_count():
    assert "expected a row count after UP TO" in parse_error(
        "SELECT matnr FROM mara UP TO many ROWS")


def test_bad_token_reported():
    assert "bad Open SQL token" in parse_error(
        "SELECT matnr FROM mara WHERE matnr = ;")


def test_trailing_input_rejected():
    assert "trailing Open SQL input" in parse_error(
        "SELECT matnr FROM mara HAVING matnr")


# -- unknown host variables ------------------------------------------------


@pytest.fixture()
def r3():
    system = R3System(R3Version.V30)
    system.activate_table(DDicTable("mara", TableKind.TRANSPARENT, [
        DDicField("matnr", SqlType.char(18), key=True),
        DDicField("mtart", SqlType.char(25)),
    ]))
    system.insert_logical("mara", ("M001", "TYPE0"))
    return system


def test_unbound_host_variable_in_translate():
    stmt = parse_open_sql("SELECT matnr FROM mara WHERE mtart = :kind")
    translation = translate(stmt, lambda _t: ["matnr", "mtart"],
                            lambda _t: True)
    with pytest.raises(OpenSqlError, match="unbound host variable :kind"):
        translation.bind("000", {})


def test_unbound_host_variable_at_execution(r3):
    with pytest.raises(OpenSqlError, match="unbound host variable"):
        r3.open_sql.select(
            "SELECT matnr FROM mara WHERE mtart = :kind", {})


def test_misnamed_host_variable_at_execution(r3):
    with pytest.raises(OpenSqlError, match="unbound host variable :kind"):
        r3.open_sql.select(
            "SELECT matnr FROM mara WHERE mtart = :kind",
            {"kinds": "TYPE0"})


def test_bound_host_variable_succeeds(r3):
    result = r3.open_sql.select(
        "SELECT matnr FROM mara WHERE mtart = :kind",
        {"kind": "TYPE0"})
    assert list(result.rows) == [("M001",)]
