"""DBIF retry/backoff, statement timeouts, and disk-level retry."""

import pytest

from repro.engine.errors import (
    ConnectionLostError,
    DiskIOError,
    StatementTimeout,
    TransientError,
)
from repro.engine.types import SqlType
from repro.r3.appserver import R3System, R3Version
from repro.r3.ddic import DDicField, DDicTable, TableKind
from repro.sim.faults import FaultProfile


def _system():
    r3 = R3System(R3Version.V22)
    r3.activate_table(DDicTable("lfa1", TableKind.TRANSPARENT, [
        DDicField("lifnr", SqlType.char(10), key=True),
        DDicField("land1", SqlType.char(3)),
    ]))
    for i in range(50):
        r3.insert_logical("lfa1", (f"S{i:04d}", "007"))
    return r3


class TestConnectionRetry:
    def test_drop_is_retried_transparently(self):
        r3 = _system()
        r3.attach_faults(FaultProfile(connection_drop_every=3))
        for _ in range(5):
            result = r3.dbif.execute_param(
                "SELECT lifnr FROM lfa1 WHERE land1 = ?", ("007",))
            assert len(result.rows) == 50
        assert r3.metrics.get("faults.connection_drops_injected") > 0
        assert r3.metrics.get("dbif.retries") > 0

    def test_backoff_is_charged_to_the_clock(self):
        plain, faulted = _system(), _system()
        faulted.attach_faults(FaultProfile(connection_drop_every=2))
        for r3 in (plain, faulted):
            for _ in range(6):
                r3.dbif.execute_param(
                    "SELECT lifnr FROM lfa1 WHERE land1 = ?", ("007",))
        backoff = faulted.metrics.get("dbif.backoff_s")
        assert backoff > 0
        # Faulted run costs at least the backoff plus the re-sent
        # round trips more than the fault-free twin.
        assert faulted.clock.now > plain.clock.now + backoff

    def test_retry_exhaustion_raises_chained_connection_lost(self):
        r3 = _system()
        burst = r3.params.dbif_max_retries + 2
        r3.attach_faults(FaultProfile(connection_drop_every=2,
                                      connection_drop_burst=burst))
        with pytest.raises(ConnectionLostError) as excinfo:
            for _ in range(5):
                r3.dbif.execute_param(
                    "SELECT lifnr FROM lfa1 WHERE land1 = ?", ("007",))
        assert isinstance(excinfo.value.__cause__, ConnectionLostError)
        assert isinstance(excinfo.value, TransientError)

    def test_exponential_backoff_doubles(self):
        r3 = _system()
        # Fault due at round trip 5 with a 3-drop burst: the statement
        # issued as the 5th round trip needs exactly three reconnects.
        r3.attach_faults(FaultProfile(connection_drop_every=5,
                                      connection_drop_burst=3))
        for _ in range(4):
            r3.dbif.execute_param(
                "SELECT lifnr FROM lfa1 WHERE land1 = ?", ("007",))
        before = r3.clock.now
        r3.dbif.execute_param(
            "SELECT lifnr FROM lfa1 WHERE land1 = ?", ("007",))
        base = r3.params.dbif_backoff_base_s
        expected_backoff = base + 2 * base + 4 * base  # three failures
        assert r3.metrics.get("dbif.backoff_s") == pytest.approx(
            expected_backoff)
        assert r3.clock.now - before > expected_backoff


class TestStatementTimeout:
    def test_timeout_raises_and_charges_partial_time(self):
        r3 = _system()
        r3.dbif.statement_timeout_s = 1e-6
        before = r3.clock.now
        with pytest.raises(StatementTimeout):
            r3.dbif.execute_param("SELECT lifnr FROM lfa1", ())
        assert r3.clock.now > before  # partial charge landed
        assert r3.metrics.get("dbif.statement_timeouts") == 1

    def test_deadline_disarmed_after_statement(self):
        r3 = _system()
        r3.dbif.statement_timeout_s = 1e-6
        with pytest.raises(StatementTimeout):
            r3.dbif.execute_param("SELECT lifnr FROM lfa1", ())
        r3.dbif.statement_timeout_s = None
        result = r3.dbif.execute_param("SELECT lifnr FROM lfa1", ())
        assert len(result.rows) == 50

    def test_generous_timeout_is_harmless(self):
        r3 = _system()
        r3.dbif.statement_timeout_s = 1e9
        result = r3.dbif.execute_param("SELECT lifnr FROM lfa1", ())
        assert len(result.rows) == 50


class TestDiskRetry:
    def test_transient_disk_error_is_retried_at_the_driver(self):
        # Inserts write through to disk, so the injector fires on them.
        r3 = _system()
        r3.attach_faults(FaultProfile(disk_error_every=3))
        for i in range(100):
            r3.insert_logical("lfa1", (f"T{i:04d}", "007"))
        assert r3.metrics.get("faults.disk_io_injected") > 0
        assert r3.metrics.get("disk.io_retries") \
            >= r3.metrics.get("faults.disk_io_injected")
        result = r3.dbif.execute_param(
            "SELECT lifnr FROM lfa1 WHERE land1 = ?", ("007",))
        assert len(result.rows) == 150  # nothing lost to the hiccups

    def test_disk_retry_exhaustion_chains(self):
        r3 = _system()
        # every=1 makes every retry attempt fail too: the driver's
        # retry budget must run out and surface a chained DiskIOError.
        r3.attach_faults(FaultProfile(disk_error_every=1))
        with pytest.raises(DiskIOError) as excinfo:
            for i in range(100):
                r3.insert_logical("lfa1", (f"T{i:04d}", "007"))
        assert isinstance(excinfo.value.__cause__, DiskIOError)

    def test_disk_faults_charge_recovery_time(self):
        plain, faulted = R3System(R3Version.V22), R3System(R3Version.V22)
        faulted.attach_faults(FaultProfile(disk_error_every=2))
        for r3 in (plain, faulted):
            r3.activate_table(DDicTable("zzz1", TableKind.TRANSPARENT, [
                DDicField("id", SqlType.char(10), key=True),
            ]))
            for i in range(50):
                r3.insert_logical("zzz1", (f"R{i:04d}",))
        assert faulted.clock.now > plain.clock.now
