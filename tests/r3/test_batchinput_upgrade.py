import pytest

from repro.engine.types import SqlType
from repro.r3.appserver import R3System, R3Version
from repro.r3.batchinput import (
    BatchInputSession,
    BatchTransaction,
    effective_parallel_time,
)
from repro.r3.ddic import DDicField, DDicTable, TableKind
from repro.r3.errors import BatchInputError, DDicError, R3Error
from repro.r3.upgrade import upgrade_to_30


def _system():
    r3 = R3System(R3Version.V22)
    r3.define_cluster("koclu", [DDicField("knumv", SqlType.char(10),
                                          key=True)])
    r3.activate_table(DDicTable("t005", TableKind.TRANSPARENT, [
        DDicField("land1", SqlType.char(3), key=True),
    ]))
    r3.activate_table(DDicTable("lfa1", TableKind.TRANSPARENT, [
        DDicField("lifnr", SqlType.char(10), key=True),
        DDicField("land1", SqlType.char(3)),
    ]))
    r3.activate_table(DDicTable("konv", TableKind.CLUSTER, [
        DDicField("knumv", SqlType.char(10), key=True),
        DDicField("kposn", SqlType.char(6), key=True),
        DDicField("kbetr", SqlType.decimal()),
    ], container="koclu", cluster_key_length=1))
    r3.insert_logical("t005", ("007",))
    return r3


class TestBatchInput:
    def test_successful_transaction(self):
        r3 = _system()
        session = BatchInputSession(r3)
        session.run(BatchTransaction(
            screens=2,
            checks=[("SELECT SINGLE land1 FROM t005 WHERE land1 = :l",
                     {"l": "007"})],
            inserts=[("lfa1", ("S1", "007"))],
        ))
        assert session.stats.transactions == 1
        assert session.stats.records_inserted == 1
        assert r3.open_sql.select_single(
            "SELECT SINGLE land1 FROM lfa1 WHERE lifnr = :l",
            {"l": "S1"}) == ("007",)

    def test_failed_check_aborts(self):
        r3 = _system()
        session = BatchInputSession(r3)
        with pytest.raises(BatchInputError):
            session.run(BatchTransaction(
                screens=1,
                checks=[("SELECT SINGLE land1 FROM t005 WHERE land1 = :l",
                         {"l": "999"})],
                inserts=[("lfa1", ("S1", "999"))],
            ))
        assert r3.open_sql.select(
            "SELECT lifnr FROM lfa1").rows == []

    def test_lenient_mode_skips(self):
        r3 = _system()
        session = BatchInputSession(r3, strict=False)
        session.run(BatchTransaction(
            screens=1,
            checks=[("SELECT SINGLE land1 FROM t005 WHERE land1 = :l",
                     {"l": "999"})],
            inserts=[("lfa1", ("S1", "999"))],
        ))
        assert session.stats.failures == 1
        assert session.stats.transactions == 0

    def test_screens_and_overhead_charge_time(self):
        r3 = _system()
        session = BatchInputSession(r3)
        span = r3.measure()
        session.run(BatchTransaction(screens=3))
        elapsed = span.stop()
        expected_min = 3 * r3.params.screen_s + \
            r3.params.batch_record_overhead_s
        assert elapsed >= expected_min

    def test_cluster_insert(self):
        r3 = _system()
        session = BatchInputSession(r3)
        session.run(BatchTransaction(
            screens=1,
            cluster_inserts=[("konv", ("V1",), [
                ("V1", "000001", -50.0), ("V1", "000002", -60.0),
            ])],
        ))
        rows = r3.open_sql.select(
            "SELECT kposn kbetr FROM konv WHERE knumv = :k", {"k": "V1"})
        assert len(rows) == 2

    def test_deletes_run_through_dbif(self):
        r3 = _system()
        session = BatchInputSession(r3)
        r3.insert_logical("lfa1", ("S1", "007"))
        session.run(BatchTransaction(
            screens=1,
            deletes=[("DELETE FROM lfa1 WHERE mandt = ? AND lifnr = ?",
                      (r3.client, "S1"))],
        ))
        assert r3.open_sql.select("SELECT lifnr FROM lfa1").rows == []

    def test_parallel_time_helper(self):
        assert effective_parallel_time(100.0, 2) == 50.0
        with pytest.raises(ValueError):
            effective_parallel_time(1.0, 0)


class TestClusterRules:
    def test_single_row_insert_into_cluster_rejected(self):
        r3 = _system()
        with pytest.raises(DDicError):
            r3.insert_logical("konv", ("V1", "000001", -10.0))

    def test_cluster_insert_into_transparent_degrades(self):
        r3 = _system()
        r3.version = R3Version.V30
        r3.convert_table("konv")
        r3.insert_cluster("konv", ("V9",), [("V9", "000001", -10.0)])
        rows = r3.open_sql.select(
            "SELECT kbetr FROM konv WHERE knumv = :k", {"k": "V9"})
        assert rows.rows == [(-10.0,)]


class TestUpgrade:
    def _loaded(self):
        r3 = _system()
        for doc in range(5):
            r3.insert_cluster("konv", (f"V{doc}",), [
                (f"V{doc}", f"{i:06d}", -float(i)) for i in range(1, 4)
            ])
        return r3

    def test_upgrade_converts_konv(self):
        r3 = self._loaded()
        report = upgrade_to_30(r3)
        assert r3.version is R3Version.V30
        assert report.converted_tables == ["konv"]
        assert not r3.ddic.lookup("konv").encapsulated
        rows = r3.open_sql.select(
            "SELECT kposn FROM konv WHERE knumv = :k", {"k": "V2"})
        assert len(rows) == 3

    def test_upgrade_grows_database(self):
        r3 = self._loaded()
        report = upgrade_to_30(r3)
        assert report.db_bytes_after > report.db_bytes_before

    def test_upgrade_takes_time(self):
        r3 = self._loaded()
        report = upgrade_to_30(r3)
        assert report.elapsed_simulated_s > 3600

    def test_cluster_conversion_gated_in_22(self):
        r3 = self._loaded()
        with pytest.raises(DDicError, match="3.0"):
            r3.convert_table("konv")

    def test_double_upgrade_rejected(self):
        r3 = self._loaded()
        upgrade_to_30(r3)
        with pytest.raises(R3Error):
            upgrade_to_30(r3)

    def test_native_sql_sees_konv_after_upgrade(self):
        r3 = self._loaded()
        upgrade_to_30(r3)
        result = r3.native_sql.exec_sql(
            f"SELECT COUNT(*) FROM konv WHERE mandt = '{r3.client}'"
        )
        assert result.scalar() == 15
