"""Dispatcher + work-process pool: scheduling, overload, crashes."""

import pytest

from repro.engine.errors import DiskIOError
from repro.r3.appserver import R3System, R3Version
from repro.r3.dispatcher import (
    PRIORITY_UPDATE,
    Dispatcher,
    DispatcherConfig,
    Request,
)
from repro.r3.errors import DispatcherOverload
from repro.r3.workproc import (
    WorkProcessPool,
    WorkProcessState,
    WorkProcessType,
)
from repro.sim.faults import FaultProfile


@pytest.fixture()
def r3():
    return R3System(R3Version.V30)


def _request(r3, label, cost=1.0, stream=0, priority=0, body=None):
    def fn():
        if body is not None:
            body()
        r3.clock.charge(cost)
        return label

    return Request(stream=stream, label=label, fn=fn, priority=priority)


def _drain(disp, max_rounds=100):
    """Dispatch until the queue is empty; returns all completions."""
    completions = []
    for _ in range(max_rounds):
        completions.extend(disp.dispatch_round())
        if disp.queue_depth == 0:
            break
    return completions


class TestScheduling:
    def test_fifo_order_and_values(self, r3):
        disp = Dispatcher(r3, DispatcherConfig(dialog_processes=3))
        for label in ("a", "b", "c"):
            disp.submit(_request(r3, label))
        completions = disp.dispatch_round()
        assert [c.request.label for c in completions] == ["a", "b", "c"]
        assert all(c.kind == "completed" for c in completions)
        assert [c.value for c in completions] == ["a", "b", "c"]

    def test_pool_bounds_multiprogramming(self, r3):
        disp = Dispatcher(r3, DispatcherConfig(dialog_processes=1,
                                               rollin_s=0.0,
                                               rollout_s=0.0))
        disp.submit(_request(r3, "first", cost=2.0))
        disp.submit(_request(r3, "second", cost=1.0))
        first_round = disp.dispatch_round()
        assert [c.request.label for c in first_round] == ["first"]
        assert disp.queue_depth == 1
        second_round = disp.dispatch_round()
        assert [c.request.label for c in second_round] == ["second"]
        # the leftover request waited exactly the first one's service
        assert second_round[0].queue_wait_s == pytest.approx(2.0)
        assert r3.metrics.get("dispatcher.queue_wait_s") == \
            pytest.approx(2.0)

    def test_queue_wait_zero_when_pool_outnumbers_streams(self, r3):
        disp = Dispatcher(r3, DispatcherConfig(dialog_processes=4))
        for i in range(4):
            disp.submit(_request(r3, f"q{i}"))
        for comp in disp.dispatch_round():
            assert comp.queue_wait_s == 0.0

    def test_roll_costs_charged_and_counted(self, r3):
        disp = Dispatcher(r3, DispatcherConfig(dialog_processes=1,
                                               rollin_s=0.5,
                                               rollout_s=0.25))
        disp.submit(_request(r3, "q", cost=1.0))
        comp = disp.dispatch_round()[0]
        assert comp.service_s == pytest.approx(1.75)
        assert r3.metrics.get("dispatcher.rollin_s") == pytest.approx(0.5)
        assert r3.metrics.get("dispatcher.rollout_s") == \
            pytest.approx(0.25)

    def test_update_request_uses_update_process(self, r3):
        disp = Dispatcher(r3, DispatcherConfig(dialog_processes=1,
                                               update_processes=1))
        disp.submit(_request(r3, "uf", priority=PRIORITY_UPDATE))
        disp.dispatch_round()
        served_by = [wp for wp in disp.pool.processes if wp.served]
        assert [wp.kind for wp in served_by] == [WorkProcessType.UPDATE]

    def test_update_falls_back_to_dialog_pool(self, r3):
        disp = Dispatcher(r3, DispatcherConfig(dialog_processes=2,
                                               update_processes=0))
        disp.submit(_request(r3, "uf", priority=PRIORITY_UPDATE))
        comp = disp.dispatch_round()[0]
        assert comp.kind == "completed"
        served_by = [wp for wp in disp.pool.processes if wp.served]
        assert [wp.kind for wp in served_by] == [WorkProcessType.DIALOG]


class TestAdmissionControl:
    def test_full_queue_rejects_typed(self, r3):
        disp = Dispatcher(r3, DispatcherConfig(dialog_processes=1,
                                               queue_capacity=2))
        disp.submit(_request(r3, "a"))
        disp.submit(_request(r3, "b"))
        with pytest.raises(DispatcherOverload) as exc:
            disp.submit(_request(r3, "c"))
        assert not exc.value.shed
        assert "queue full" in str(exc.value)
        assert r3.metrics.get("dispatcher.rejected") == 1
        assert disp.queue_depth == 2

    def test_lowprio_shed_past_highwater(self, r3):
        disp = Dispatcher(r3, DispatcherConfig(dialog_processes=1,
                                               queue_capacity=4,
                                               shed_highwater=0.5))
        disp.submit(_request(r3, "a"))
        disp.submit(_request(r3, "b"))
        # occupancy 2/4 >= 50% high water: update traffic is shed ...
        with pytest.raises(DispatcherOverload) as exc:
            disp.submit(_request(r3, "uf", priority=PRIORITY_UPDATE))
        assert exc.value.shed
        assert r3.metrics.get("dispatcher.shed_lowprio") == 1
        # ... while dialog traffic is still admitted
        disp.submit(_request(r3, "c"))
        assert disp.queue_depth == 3

    def test_lowprio_admitted_when_queue_calm(self, r3):
        disp = Dispatcher(r3, DispatcherConfig(dialog_processes=1,
                                               queue_capacity=4,
                                               shed_highwater=0.5))
        disp.submit(_request(r3, "uf", priority=PRIORITY_UPDATE))
        assert disp.queue_depth == 1

    def test_deadline_shed_at_dispatch(self, r3):
        disp = Dispatcher(r3, DispatcherConfig(
            dialog_processes=1, queue_wait_deadline_s=5.0))
        disp.submit(_request(r3, "stale"))
        r3.clock.charge(6.0)
        comp = disp.dispatch_round()[0]
        assert comp.kind == "shed"
        assert "deadline" in comp.reason
        assert comp.queue_wait_s == pytest.approx(6.0)
        assert r3.metrics.get("dispatcher.deadline_shed") == 1
        # the work process never served it
        assert all(wp.served == 0 for wp in disp.pool.processes)


class TestCrashRecovery:
    def test_crash_restarts_process_and_requeues_idempotently(self, r3):
        r3.attach_faults(FaultProfile(work_process_crash_every=2))
        disp = Dispatcher(r3, DispatcherConfig(dialog_processes=1,
                                               restart_s=2.0))
        runs = []
        disp.submit(_request(r3, "a", body=lambda: runs.append("a")))
        disp.submit(_request(r3, "b", body=lambda: runs.append("b")))
        completions = _drain(disp)
        kinds = [(c.request.label, c.kind) for c in completions]
        # request b crashes at roll-in (before its body), is requeued
        # at the queue front and completes on the restarted process
        assert ("b", "requeued") in kinds
        assert kinds[-1] == ("b", "completed")
        assert runs == ["a", "b"]  # bodies ran exactly once each
        assert r3.metrics.get("dispatcher.requeued") == 1
        assert r3.metrics.get("dispatcher.wp_restarts") == 1
        assert r3.metrics.get("faults.crashes_injected") == 1

    def test_restart_charges_simulated_time(self, r3):
        r3.attach_faults(FaultProfile(work_process_crash_every=1))
        disp = Dispatcher(r3, DispatcherConfig(dialog_processes=1,
                                               rollin_s=0.0,
                                               rollout_s=0.0,
                                               restart_s=2.0,
                                               max_requeues=1))
        disp.submit(_request(r3, "doomed", cost=0.0))
        before = r3.clock.now
        _drain(disp)
        # two crashes (initial + one requeue) -> two restarts
        assert r3.clock.now - before == pytest.approx(4.0)

    def test_requeue_budget_exhaustion_sheds(self, r3):
        r3.attach_faults(FaultProfile(work_process_crash_every=1))
        disp = Dispatcher(r3, DispatcherConfig(dialog_processes=1,
                                               max_requeues=2))
        disp.submit(_request(r3, "doomed"))
        completions = _drain(disp)
        assert [c.kind for c in completions] == \
            ["requeued", "requeued", "shed"]
        assert "requeue budget exhausted" in completions[-1].reason
        assert r3.metrics.get("dispatcher.wp_restarts") == 3

    def test_transient_error_sheds_but_process_survives(self, r3):
        def boom():
            raise DiskIOError("injected")

        disp = Dispatcher(r3, DispatcherConfig(dialog_processes=1))
        disp.submit(Request(stream=0, label="q", fn=boom))
        comp = disp.dispatch_round()[0]
        assert comp.kind == "shed"
        assert "DiskIOError" in comp.reason
        wp = disp.pool.processes[0]
        assert wp.state is WorkProcessState.IDLE
        assert r3.metrics.get("dispatcher.shed") == 1


class TestConfigAndPool:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            DispatcherConfig(queue_capacity=0)
        with pytest.raises(ValueError):
            DispatcherConfig(shed_highwater=0.0)
        with pytest.raises(ValueError):
            DispatcherConfig(shed_highwater=1.5)

    def test_pool_validation(self, r3):
        with pytest.raises(ValueError):
            WorkProcessPool(r3, dialog=0, update=1, restart_s=0.0)
        with pytest.raises(ValueError):
            WorkProcessPool(r3, dialog=1, update=-1, restart_s=0.0)

    def test_unconstrained_config_shape(self):
        config = DispatcherConfig.unconstrained(6)
        assert config.dialog_processes == 6
        assert config.queue_capacity == 7
        assert config.rollin_s == 0.0
        assert config.rollout_s == 0.0
        assert config.queue_wait_deadline_s is None

    def test_pool_stats_account_service(self, r3):
        disp = Dispatcher(r3, DispatcherConfig(dialog_processes=1,
                                               rollin_s=0.0,
                                               rollout_s=0.0))
        disp.submit(_request(r3, "q", cost=3.0))
        disp.dispatch_round()
        stats = disp.pool.stats()
        assert stats["DIA00"]["served"] == 1
        assert stats["DIA00"]["busy_s"] == pytest.approx(3.0)

    def test_build_dispatcher_facade(self, r3):
        disp = r3.build_dispatcher()
        assert isinstance(disp, Dispatcher)
        assert disp.config.dialog_processes == 4

    def test_serve_emits_trace_spans(self, r3):
        r3.tracer.enable()
        disp = Dispatcher(r3, DispatcherConfig(dialog_processes=1))
        disp.submit(_request(r3, "q7", stream=3))
        disp.dispatch_round()
        spans = [s for root in r3.tracer.roots for s in root.walk()
                 if s.name == "dispatcher.serve"]
        assert len(spans) == 1
        assert spans[0].attrs["label"] == "q7"
        assert spans[0].attrs["stream"] == 3
        assert spans[0].attrs["outcome"] == "completed"
