import pytest

from repro.engine.types import SqlType
from repro.r3.abap import InternalTable, group_aggregate
from repro.r3.appserver import R3System, R3Version
from repro.r3.ddic import DDicField, DDicTable, TableKind


@pytest.fixture()
def r3():
    system = R3System(R3Version.V22)
    system.activate_table(DDicTable("mara", TableKind.TRANSPARENT, [
        DDicField("matnr", SqlType.char(18), key=True),
        DDicField("mtart", SqlType.char(25)),
    ]))
    for i in range(50):
        system.insert_logical("mara", (f"M{i:03d}", f"T{i % 5}"))
    system.db.analyze()
    return system


class TestInternalTable:
    def test_append_charges_abap(self, r3):
        before = r3.metrics.get("abap.rows_processed")
        itab = InternalTable(r3)
        itab.append((1,))
        assert r3.metrics.get("abap.rows_processed") == before + 1

    def test_extract_counts(self, r3):
        itab = InternalTable(r3)
        itab.extract((1,))
        itab.extract((2,))
        assert r3.metrics.get("abap.extracts") == 2

    def test_sort_via_disk_spills(self, r3):
        itab = InternalTable(r3)
        for i in range(100):
            itab.extract((100 - i, i))
        before = r3.metrics.get("abap.sort_spills")
        itab.sort(lambda row: (row[0],))
        assert r3.metrics.get("abap.sort_spills") == before + 1
        assert itab.rows[0][0] == 1

    def test_sort_in_memory_for_presentation(self, r3):
        itab = InternalTable(r3)
        itab.extend([(3,), (1,), (2,)])
        before = r3.metrics.get("abap.sort_spills")
        itab.sort(via_disk=False)
        assert r3.metrics.get("abap.sort_spills") == before
        assert [row[0] for row in itab.rows] == [1, 2, 3]

    def test_group_loop_at_end_semantics(self, r3):
        itab = InternalTable(r3)
        itab.extend([("a", 1), ("a", 2), ("b", 3)])
        itab.sort(lambda row: (row[0],), via_disk=False)
        groups = list(itab.group_loop(lambda row: (row[0],)))
        assert groups == [(("a",), [("a", 1), ("a", 2)]),
                          (("b",), [("b", 3)])]

    def test_read_binary(self, r3):
        itab = InternalTable(r3)
        itab.extend([("b", 2), ("a", 1), ("c", 3)])
        itab.sort(lambda row: (row[0],), via_disk=False)
        assert itab.read_binary(("b",)) == ("b", 2)
        assert itab.read_binary(("zz",)) is None

    def test_read_binary_requires_sort(self, r3):
        itab = InternalTable(r3)
        itab.append(("a",))
        with pytest.raises(RuntimeError):
            itab.read_binary(("a",))

    def test_read_binary_all(self, r3):
        itab = InternalTable(r3)
        itab.extend([("a", 1), ("a", 2), ("b", 3)])
        itab.sort(lambda row: (row[0],), via_disk=False)
        assert itab.read_binary_all(("a",)) == [("a", 1), ("a", 2)]
        assert itab.read_binary_all(("x",)) == []

    def test_group_aggregate_end_to_end(self, r3):
        records = [("x", 2.0), ("y", 3.0), ("x", 4.0)]
        out = group_aggregate(
            r3, records, lambda g: (g[0],),
            lambda key, group: key + (sum(g[1] for g in group),),
        )
        assert sorted(out) == [("x", 6.0), ("y", 3.0)]


class TestTableBuffers:
    def test_miss_then_hit(self, r3):
        r3.buffers.configure("mara", 1 << 20)
        first = r3.open_sql.select_single(
            "SELECT SINGLE mtart FROM mara WHERE matnr = :m",
            {"m": "M001"})
        roundtrips = r3.metrics.get("dbif.roundtrips")
        second = r3.open_sql.select_single(
            "SELECT SINGLE mtart FROM mara WHERE matnr = :m",
            {"m": "M001"})
        assert first == second
        # buffered: no further round trip
        assert r3.metrics.get("dbif.roundtrips") == roundtrips
        assert r3.buffers.stats("mara").hits == 1

    def test_negative_caching(self, r3):
        r3.buffers.configure("mara", 1 << 20)
        for _ in range(2):
            row = r3.open_sql.select_single(
                "SELECT SINGLE mtart FROM mara WHERE matnr = :m",
                {"m": "MISSING"})
            assert row is None
        assert r3.buffers.stats("mara").hits == 1

    def test_eviction_under_byte_budget(self, r3):
        buffer = r3.buffers.configure("mara", 200)  # a handful of rows
        capacity = buffer.capacity_rows
        for i in range(capacity + 5):
            r3.open_sql.select_single(
                "SELECT SINGLE mtart FROM mara WHERE matnr = :m",
                {"m": f"M{i:03d}"})
        assert buffer.stats.evictions == 5

    def test_invalidation_on_insert(self, r3):
        r3.buffers.configure("mara", 1 << 20)
        r3.open_sql.select_single(
            "SELECT SINGLE mtart FROM mara WHERE matnr = :m",
            {"m": "M001"})
        r3.insert_logical("mara", ("M999", "T9"))
        _active, hit, _row = r3.buffers.lookup(
            "mara", (r3.client, "M001"))
        assert hit is False

    def test_non_key_lookup_bypasses_buffer(self, r3):
        r3.buffers.configure("mara", 1 << 20)
        r3.open_sql.select_single(
            "SELECT SINGLE matnr FROM mara WHERE mtart = 'T1'")
        assert r3.buffers.stats("mara").lookups == 0

    def test_hit_ratio(self, r3):
        r3.buffers.configure("mara", 1 << 20)
        for _ in range(4):
            r3.open_sql.select_single(
                "SELECT SINGLE mtart FROM mara WHERE matnr = :m",
                {"m": "M002"})
        assert r3.buffers.stats("mara").hit_ratio == pytest.approx(0.75)
