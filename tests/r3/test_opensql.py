import pytest

from repro.engine.types import SqlType
from repro.r3.appserver import R3System, R3Version
from repro.r3.ddic import DDicField, DDicTable, TableKind
from repro.r3.errors import NativeSqlError, OpenSqlError
from repro.r3.opensql.ast import OSAgg, OSField, OSStar
from repro.r3.opensql.parser import parse_open_sql
from repro.r3.opensql.translate import translate


@pytest.fixture()
def r3():
    system = R3System(R3Version.V22)
    system.define_pool("kapol")
    system.activate_table(DDicTable("mara", TableKind.TRANSPARENT, [
        DDicField("matnr", SqlType.char(18), key=True),
        DDicField("mtart", SqlType.char(25)),
        DDicField("psize", SqlType.integer()),
    ]))
    system.activate_table(DDicTable("a004", TableKind.POOL, [
        DDicField("kschl", SqlType.char(4), key=True),
        DDicField("matnr", SqlType.char(18), key=True),
        DDicField("knumh", SqlType.char(10)),
    ], container="kapol"))
    for i in range(30):
        system.insert_logical("mara", (f"M{i:03d}", f"TYPE{i % 3}", i))
        system.insert_logical("a004", ("PR00", f"M{i:03d}", f"H{i:03d}"))
    system.db.analyze()
    return system


class TestParser:
    def test_basic(self):
        stmt = parse_open_sql("SELECT matnr mtart FROM mara")
        assert [f.name for f in stmt.items] == ["matnr", "mtart"]
        assert stmt.table == "mara"

    def test_star_and_single(self):
        stmt = parse_open_sql("SELECT SINGLE * FROM mara "
                              "WHERE matnr = :m")
        assert stmt.single and isinstance(stmt.items[0], OSStar)

    def test_tilde_qualification(self):
        stmt = parse_open_sql(
            "SELECT p~matnr FROM mara AS p INNER JOIN a004 AS a "
            "ON a~matnr = p~matnr"
        )
        assert stmt.items[0] == OSField("p", "matnr")
        assert stmt.joins[0].alias == "a"

    def test_aggregates(self):
        stmt = parse_open_sql(
            "SELECT mtart COUNT( * ) SUM( psize ) FROM mara "
            "GROUP BY mtart"
        )
        aggs = [i for i in stmt.items if isinstance(i, OSAgg)]
        assert [a.func for a in aggs] == ["COUNT", "SUM"]
        assert stmt.group_by == [OSField(None, "mtart")]

    def test_no_expressions_in_aggregates(self):
        """The grammar itself forbids arithmetic in aggregates — the
        paper's Open SQL limitation is structural."""
        with pytest.raises(OpenSqlError):
            parse_open_sql("SELECT SUM( psize * 2 ) FROM mara")

    def test_order_by_descending(self):
        stmt = parse_open_sql(
            "SELECT matnr FROM mara ORDER BY psize DESCENDING matnr"
        )
        assert stmt.order_by[0][1] is True
        assert stmt.order_by[1][1] is False

    def test_up_to_rows(self):
        stmt = parse_open_sql("SELECT matnr FROM mara UP TO 5 ROWS")
        assert stmt.up_to == 5

    def test_conditions(self):
        stmt = parse_open_sql(
            "SELECT matnr FROM mara WHERE (psize > 3 AND psize < 10) "
            "OR mtart LIKE 'T%' AND psize IN (1, 2) "
            "AND psize BETWEEN :lo AND :hi AND mtart <> 'X'"
        )
        assert stmt.where is not None

    def test_trailing_garbage(self):
        with pytest.raises(OpenSqlError):
            parse_open_sql("SELECT matnr FROM mara BANANAS")

    def test_count_star_only_for_count(self):
        with pytest.raises(OpenSqlError):
            parse_open_sql("SELECT SUM( * ) FROM mara")


class TestTranslation:
    def test_literals_become_parameters(self):
        stmt = parse_open_sql(
            "SELECT matnr FROM mara WHERE mtart = 'TYPE1' AND psize > 5"
        )
        translation = translate(stmt, lambda t: ["matnr"], lambda t: True)
        assert translation.sql.count("?") == 3  # mandt + two values
        assert "TYPE1" not in translation.sql

    def test_mandt_injected(self):
        stmt = parse_open_sql("SELECT matnr FROM mara")
        translation = translate(stmt, lambda t: ["matnr"], lambda t: True)
        assert "mara.mandt = ?" in translation.sql
        values = translation.bind("301", {})
        assert values == ["301"]

    def test_host_variable_binding(self):
        stmt = parse_open_sql("SELECT matnr FROM mara WHERE psize = :p")
        translation = translate(stmt, lambda t: ["matnr"], lambda t: True)
        assert translation.bind("301", {"p": 7}) == ["301", 7]
        with pytest.raises(OpenSqlError):
            translation.bind("301", {})

    def test_single_becomes_limit_one(self):
        stmt = parse_open_sql("SELECT SINGLE matnr FROM mara")
        translation = translate(stmt, lambda t: ["matnr"], lambda t: True)
        assert translation.sql.endswith("LIMIT 1")


class TestExecutorTransparent:
    def test_select_loop(self, r3):
        result = r3.open_sql.select(
            "SELECT matnr psize FROM mara WHERE mtart = 'TYPE1'"
        )
        assert len(result) == 10
        assert result.fields == ["matnr", "psize"]

    def test_select_single(self, r3):
        row = r3.open_sql.select_single(
            "SELECT SINGLE mtart FROM mara WHERE matnr = :m",
            {"m": "M005"},
        )
        assert row == ("TYPE2",)

    def test_select_single_miss(self, r3):
        assert r3.open_sql.select_single(
            "SELECT SINGLE mtart FROM mara WHERE matnr = :m",
            {"m": "NOPE"},
        ) is None

    def test_order_by_and_up_to(self, r3):
        result = r3.open_sql.select(
            "SELECT matnr FROM mara ORDER BY psize DESCENDING UP TO 3 ROWS"
        )
        assert [row[0] for row in result.rows] == ["M029", "M028", "M027"]

    def test_cursor_cache_reused(self, r3):
        r3.open_sql.select("SELECT matnr FROM mara WHERE psize = :p",
                           {"p": 1})
        before = r3.metrics.get("dbif.cursor_cache_hits")
        r3.open_sql.select("SELECT matnr FROM mara WHERE psize = :p",
                           {"p": 2})
        assert r3.metrics.get("dbif.cursor_cache_hits") == before + 1

    def test_joins_gated_in_22(self, r3):
        with pytest.raises(OpenSqlError, match="3.0"):
            r3.open_sql.select(
                "SELECT p~matnr FROM mara AS p INNER JOIN a004 AS a "
                "ON a~matnr = p~matnr"
            )

    def test_aggregates_gated_in_22(self, r3):
        with pytest.raises(OpenSqlError, match="3.0"):
            r3.open_sql.select("SELECT COUNT( * ) FROM mara")

    def test_unknown_table(self, r3):
        with pytest.raises(OpenSqlError):
            r3.open_sql.select("SELECT x FROM nothere")


class TestExecutorEncapsulated:
    def test_pool_full_scan_with_filter(self, r3):
        result = r3.open_sql.select(
            "SELECT matnr knumh FROM a004 WHERE matnr = 'M007'"
        )
        assert result.rows == [("M007", "H007")]
        assert r3.metrics.get("abap.rows_decoded") >= 30

    def test_pool_key_probe(self, r3):
        row = r3.open_sql.select_single(
            "SELECT SINGLE knumh FROM a004 WHERE kschl = 'PR00' "
            "AND matnr = :m",
            {"m": "M003"},
        )
        assert row == ("H003",)

    def test_pool_star(self, r3):
        result = r3.open_sql.select("SELECT * FROM a004 UP TO 2 ROWS")
        assert result.fields == ["kschl", "matnr", "knumh"]
        assert len(result) == 2

    def test_pool_rejects_aggregates_even_in_30(self, r3):
        r3.version = R3Version.V30
        try:
            with pytest.raises(OpenSqlError, match="transparent"):
                r3.open_sql.select("SELECT COUNT( * ) FROM a004")
        finally:
            r3.version = R3Version.V22

    def test_pool_order_by_in_app_server(self, r3):
        result = r3.open_sql.select(
            "SELECT matnr FROM a004 ORDER BY matnr DESCENDING UP TO 1 ROWS"
        )
        assert result.rows == [("M029",)]


class TestNativeSql:
    def test_passthrough(self, r3):
        result = r3.native_sql.exec_sql(
            "SELECT matnr FROM mara WHERE mandt = '301' AND psize = 4"
        )
        assert result.rows == [("M004",)]

    def test_forgotten_mandt_is_not_injected(self, r3):
        """The paper's safety warning: Native SQL sees all clients."""
        other = R3System(R3Version.V22, client="999")
        # (not installing data for 999; just check no rewriting happens)
        result = r3.native_sql.exec_sql("SELECT COUNT(*) FROM mara")
        assert result.scalar() == 30  # everything, no client filter

    def test_encapsulated_table_rejected(self, r3):
        with pytest.raises(NativeSqlError, match="pool"):
            r3.native_sql.exec_sql("SELECT knumh FROM a004")

    def test_encapsulated_in_subquery_rejected(self, r3):
        with pytest.raises(NativeSqlError):
            r3.native_sql.exec_sql(
                "SELECT matnr FROM mara WHERE matnr IN "
                "(SELECT matnr FROM a004)"
            )

    def test_dml_checked_too(self, r3):
        with pytest.raises(NativeSqlError):
            r3.native_sql.exec_sql("DELETE FROM a004")
