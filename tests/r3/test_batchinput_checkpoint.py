"""Checkpointed batch input: journal, rollback, resume edge cases."""

import pytest

from repro.engine.types import SqlType
from repro.r3.appserver import R3System, R3Version
from repro.r3.batchinput import (
    BatchInputSession,
    BatchTransaction,
    LoadJournal,
)
from repro.r3.ddic import DDicField, DDicTable, TableKind
from repro.r3.errors import BatchInputError, WorkProcessCrash
from repro.sim.faults import FaultProfile


def _system():
    r3 = R3System(R3Version.V22)
    r3.activate_table(DDicTable("t005", TableKind.TRANSPARENT, [
        DDicField("land1", SqlType.char(3), key=True),
    ]))
    r3.activate_table(DDicTable("lfa1", TableKind.TRANSPARENT, [
        DDicField("lifnr", SqlType.char(10), key=True),
        DDicField("land1", SqlType.char(3)),
    ]))
    r3.insert_logical("t005", ("007",))
    return r3


def _supplier(i, land="007"):
    return BatchTransaction(
        screens=1,
        checks=[("SELECT SINGLE land1 FROM t005 WHERE land1 = :l",
                 {"l": land})],
        inserts=[("lfa1", (f"S{i:04d}", land))],
    )


def _suppliers(n):
    return [_supplier(i) for i in range(n)]


def _count(r3):
    return len(r3.dbif.execute_param("SELECT lifnr FROM lfa1", ()).rows)


class TestCheckpointing:
    def test_full_phase_commits_and_completes(self):
        r3 = _system()
        journal = LoadJournal()
        session = BatchInputSession(r3, commit_interval=3, journal=journal)
        session.run_phase("SUPPLIER", _suppliers(10))
        progress = journal.phase("SUPPLIER")
        assert progress.complete
        assert progress.transactions_committed == 10
        assert progress.batches_committed == 4  # 3+3+3+1
        assert r3.metrics.get("batchinput.checkpoints") == 4
        assert r3.metrics.get("batchinput.checkpoint_overhead_s") == \
            pytest.approx(4 * r3.params.checkpoint_s)
        assert _count(r3) == 10

    def test_checkpoint_overhead_absent_without_journal(self):
        r3 = _system()
        session = BatchInputSession(r3)
        session.run_all(_suppliers(10))
        assert r3.metrics.get("batchinput.checkpoints") == 0
        assert _count(r3) == 10

    def test_consistency_check_failure_mid_batch_rolls_back(self):
        r3 = _system()
        journal = LoadJournal()
        session = BatchInputSession(r3, commit_interval=2, journal=journal)
        # Batch 1 (txn 0,1) commits; batch 2 starts with good txn 2,
        # then txn 3 fails its check -> txn 2's row must be rolled back.
        transactions = _suppliers(3) + [_supplier(99, land="bad")]
        with pytest.raises(BatchInputError):
            session.run_phase("SUPPLIER", transactions)
        progress = journal.phase("SUPPLIER")
        assert progress.transactions_committed == 2
        assert not progress.complete
        assert _count(r3) == 2  # txn 2 rolled back, batch 1 kept
        assert r3.metrics.get("batchinput.rollbacks") == 1
        assert r3.metrics.get("recovery.rows_rolled_back") == 1

    def test_empty_phase_completes_without_checkpoints(self):
        r3 = _system()
        journal = LoadJournal()
        session = BatchInputSession(r3, commit_interval=5, journal=journal)
        session.run_phase("EMPTY", [])
        progress = journal.phase("EMPTY")
        assert progress.complete
        assert progress.batches_committed == 0
        assert r3.metrics.get("batchinput.checkpoints") == 0


class TestCrashRecovery:
    def test_crash_rolls_back_to_last_checkpoint(self):
        r3 = _system()
        journal = LoadJournal()
        session = BatchInputSession(r3, commit_interval=4, journal=journal)
        # The load charges ~0.4s/transaction; a crash at 2.0s simulated
        # lands inside the second batch.
        r3.attach_faults(FaultProfile(crash_at_s=(2.0,)))
        with pytest.raises(WorkProcessCrash):
            session.run_phase("SUPPLIER", _suppliers(20))
        progress = journal.phase("SUPPLIER")
        assert progress.transactions_committed % 4 == 0
        assert _count(r3) == progress.transactions_committed
        assert r3.metrics.get("faults.crashes_injected") == 1

    def test_resume_with_zero_batches_committed_replays_everything(self):
        r3 = _system()
        journal = LoadJournal()
        session = BatchInputSession(r3, commit_interval=50, journal=journal)
        r3.attach_faults(FaultProfile(crash_at_s=(2.0,)))
        with pytest.raises(WorkProcessCrash):
            session.run_phase("SUPPLIER", _suppliers(12))
        assert journal.phase("SUPPLIER").transactions_committed == 0
        assert _count(r3) == 0  # everything uncommitted was undone
        resumed = BatchInputSession(r3, commit_interval=50, journal=journal)
        resumed.run_phase("SUPPLIER", _suppliers(12))
        assert journal.phase("SUPPLIER").complete
        assert _count(r3) == 12

    def test_resume_with_all_batches_committed_skips_phase(self):
        r3 = _system()
        journal = LoadJournal()
        session = BatchInputSession(r3, commit_interval=3, journal=journal)
        session.run_phase("SUPPLIER", _suppliers(9))
        before = r3.clock.now
        resumed = BatchInputSession(r3, commit_interval=3, journal=journal)
        resumed.run_phase("SUPPLIER", _suppliers(9))
        assert r3.clock.now == before  # skip is free (journal in memory)
        assert r3.metrics.get("batchinput.journal_phase_skips") == 1
        assert _count(r3) == 9  # idempotent: no duplicate replay

    def test_crash_resume_matches_fault_free_run(self):
        fault_free = _system()
        BatchInputSession(fault_free, commit_interval=4,
                          journal=LoadJournal()).run_phase(
            "SUPPLIER", _suppliers(20))

        crashed = _system()
        journal = LoadJournal()
        session = BatchInputSession(crashed, commit_interval=4,
                                    journal=journal)
        crashed.attach_faults(FaultProfile(crash_at_s=(3.0,)))
        with pytest.raises(WorkProcessCrash):
            session.run_phase("SUPPLIER", _suppliers(20))
        resumed = BatchInputSession(crashed, commit_interval=4,
                                    journal=journal)
        resumed.run_phase("SUPPLIER", _suppliers(20))
        free_rows = fault_free.dbif.execute_param(
            "SELECT lifnr, land1 FROM lfa1", ()).rows
        crash_rows = crashed.dbif.execute_param(
            "SELECT lifnr, land1 FROM lfa1", ()).rows
        assert sorted(crash_rows) == sorted(free_rows)
        # Recovery costs extra simulated time (rollback + redo).
        assert crashed.clock.now > fault_free.clock.now

    def test_resume_partial_batch_does_not_duplicate(self):
        r3 = _system()
        journal = LoadJournal()
        session = BatchInputSession(r3, commit_interval=4, journal=journal)
        r3.attach_faults(FaultProfile(crash_at_s=(2.0,)))
        with pytest.raises(WorkProcessCrash):
            session.run_phase("SUPPLIER", _suppliers(20))
        resumed = BatchInputSession(r3, commit_interval=4, journal=journal)
        # A duplicate replay would violate lfa1's primary key and raise.
        resumed.run_phase("SUPPLIER", _suppliers(20))
        assert _count(r3) == 20
