"""Multi-app-server cluster: DDLOG coherence, balancer, failover."""

import pytest

from repro.engine.errors import CircuitOpenError
from repro.engine.types import SqlType
from repro.r3.appserver import R3System, R3Version
from repro.r3.cluster import (
    ClusterDownError,
    DdLog,
    LoginBalancer,
    R3Cluster,
)
from repro.r3.dbif import BreakerState
from repro.r3.ddic import DDicField, DDicTable, TableKind


def make_cluster(n_servers=2, sync_period_s=5.0, routing="round_robin"):
    """A small loaded installation scaled out to ``n_servers``."""
    primary = R3System(R3Version.V30)
    primary.activate_table(DDicTable("mara", TableKind.TRANSPARENT, [
        DDicField("matnr", SqlType.char(18), key=True),
        DDicField("mtart", SqlType.char(25)),
    ]))
    for i in range(20):
        primary.insert_logical("mara", (f"M{i:03d}", f"T{i % 5}"))
    primary.db.analyze()
    cluster = R3Cluster(primary, n_servers=n_servers,
                        sync_period_s=sync_period_s, routing=routing)
    cluster.configure_buffers({"mara": 1 << 20})
    return cluster


def buffered_read(server, matnr="M001"):
    """One buffered single-record read on one server."""
    return server.buffers.lookup("mara", (server.client, matnr))


def warm(server, matnr="M001"):
    """Put one row in a server's table buffer."""
    row = server.open_sql.select_single(
        "SELECT SINGLE mtart FROM mara WHERE matnr = :m", {"m": matnr})
    assert row is not None
    active, hit, _row = buffered_read(server, matnr)
    assert active and hit


class TestDdLog:
    def test_append_assigns_dense_sequence(self):
        log = DdLog()
        first = log.append("VBAK", origin="as0", t=1.0)
        second = log.append("vbap", origin="as1", t=2.0)
        assert (first.seq, second.seq) == (1, 2)
        assert first.table == "vbak"  # normalized like the DDIC
        assert log.head_seq == 2

    def test_records_since_position(self):
        log = DdLog()
        for i in range(4):
            log.append("mara", origin="as0", t=float(i))
        assert [r.seq for r in log.records_since(2)] == [3, 4]
        assert log.records_since(4) == []


class TestBufferCoherence:
    def test_single_server_cluster_disables_coherence(self):
        cluster = make_cluster(n_servers=1, sync_period_s=5.0)
        assert cluster.servers[0].coherence is None
        assert cluster.max_read_staleness_s == 0.0

    def test_sync_period_must_be_positive(self):
        cluster = make_cluster(n_servers=1, sync_period_s=None)
        from repro.r3.cluster import BufferCoherence

        with pytest.raises(ValueError):
            BufferCoherence(cluster.primary, cluster.ddlog, 0.0)

    def test_writer_invalidates_own_buffer_synchronously(self):
        cluster = make_cluster()
        as0 = cluster.servers[0]
        warm(as0)
        as0.insert_logical("mara", ("M998", "T8"))
        _active, hit, _row = buffered_read(as0)
        assert hit is False  # local reads see local writes immediately
        assert cluster.ddlog.head_seq == 1
        assert cluster.ddlog.records[0].origin == "as0"

    def test_peer_replays_after_sync_period(self):
        cluster = make_cluster(sync_period_s=5.0)
        as0, as1 = cluster.servers
        warm(as1)
        before = cluster.metrics.get("cluster.stale_reads_prevented")
        as0.insert_logical("mara", ("M997", "T7"))
        # Within the sync period the peer still serves the (stale)
        # buffered row — that is the R/3 coherence trade-off.
        _active, hit, _row = buffered_read(as1)
        assert hit is True
        cluster.clock.charge(5.0)
        _active, hit, _row = buffered_read(as1)
        assert hit is False  # replay invalidated before the read
        assert as1.coherence.replayed >= 1
        assert cluster.metrics.get("cluster.stale_reads_prevented") \
            == before + 1

    def test_own_records_are_skipped_on_replay(self):
        cluster = make_cluster(sync_period_s=5.0)
        as0 = cluster.servers[0]
        as0.insert_logical("mara", ("M996", "T6"))
        cluster.clock.charge(5.0)
        replayed = as0.coherence.sync()
        assert replayed == 0  # own writes were applied synchronously
        assert as0.coherence.applied_seq == cluster.ddlog.head_seq

    def test_no_read_staler_than_one_sync_period(self):
        cluster = make_cluster(sync_period_s=5.0)
        as0, as1 = cluster.servers
        warm(as1)
        for step in (1.0, 2.5, 4.9, 0.3, 6.0, 2.0):
            cluster.clock.charge(step)
            as0.insert_logical("mara", (f"MX{step}", "T0"))
            buffered_read(as1)
        assert cluster.max_read_staleness_s < 5.0

    def test_ddlog_invalidations_counted(self):
        cluster = make_cluster()
        before = cluster.metrics.get("cluster.ddlog_invalidations")
        cluster.servers[1].insert_logical("mara", ("M995", "T5"))
        assert cluster.metrics.get("cluster.ddlog_invalidations") \
            == before + 1

    def test_cold_start_jumps_to_head(self):
        cluster = make_cluster()
        as0, as1 = cluster.servers
        for i in range(3):
            as0.insert_logical("mara", (f"MC{i}", "T1"))
        assert as1.coherence.applied_seq == 0
        as1.coherence.cold_start()
        assert as1.coherence.applied_seq == cluster.ddlog.head_seq


class TestLoginBalancer:
    def test_round_robin_cycles_servers(self):
        cluster = make_cluster(n_servers=3, routing="round_robin")
        names = [cluster.balancer.route(i).name for i in range(6)]
        assert names == ["as0", "as1", "as2", "as0", "as1", "as2"]

    def test_round_robin_skips_down_server(self):
        cluster = make_cluster(n_servers=3, routing="round_robin")
        cluster.kill(1)
        names = [cluster.balancer.route(i).name for i in range(4)]
        assert names == ["as0", "as2", "as0", "as2"]

    def test_sticky_pins_session(self):
        cluster = make_cluster(routing="sticky")
        balancer = cluster.balancer
        assert balancer.route("alice").name == "as0"
        assert balancer.route("bob").name == "as1"
        # every later login goes back to the pinned server
        assert balancer.route("alice").name == "as0"
        assert balancer.route("bob").name == "as1"
        assert balancer.sessions_rerouted == 0

    def test_sticky_reroutes_on_server_down(self):
        cluster = make_cluster(routing="sticky")
        balancer = cluster.balancer
        balancer.route("alice")          # as0
        balancer.route("bob")            # as1
        cluster.kill(1)
        before = cluster.metrics.get("cluster.sessions_rerouted")
        assert balancer.route("bob").name == "as0"
        assert balancer.sessions_rerouted == 1
        assert cluster.metrics.get("cluster.sessions_rerouted") \
            == before + 1
        # re-pin is permanent: no further re-route counted
        assert balancer.route("bob").name == "as0"
        assert balancer.sessions_rerouted == 1

    def test_all_servers_down_raises(self):
        cluster = make_cluster()
        for server in cluster.servers:
            server.up = False
        with pytest.raises(ClusterDownError):
            cluster.balancer.route("alice")

    def test_unknown_policy_rejected(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            LoginBalancer(cluster, "random")


class TestClusterFailover:
    def test_primary_cannot_be_killed(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            cluster.kill(0)

    def test_kill_marks_down_and_counts(self):
        cluster = make_cluster()
        before = cluster.metrics.get("cluster.server_crashes")
        cluster.kill(1)
        assert not cluster.servers[1].up
        assert cluster.servers_down == 1
        assert cluster.healthy() == [cluster.servers[0]]
        assert cluster.metrics.get("cluster.server_crashes") == before + 1
        with pytest.raises(ValueError):
            cluster.kill(1)  # already down

    def test_rejoin_charges_restart_and_cold_starts(self):
        cluster = make_cluster()
        as1 = cluster.servers[1]
        warm(as1)
        as1.dbif.execute_param("SELECT matnr FROM mara WHERE mtart = ?",
                               ("T1",))
        for _ in range(as1.params.breaker_failure_threshold):
            as1.dbif.breaker.record_failure()
        assert as1.dbif.breaker.state is BreakerState.OPEN
        cluster.kill(1)
        with pytest.raises(ValueError):
            cluster.rejoin(0)  # still up
        t0 = cluster.clock.now
        cluster.rejoin(1)
        assert as1.up
        assert cluster.clock.now - t0 == pytest.approx(
            as1.params.appserver_restart_s)
        # cold start: empty buffers, empty cursor cache, fresh breaker
        _active, hit, _row = buffered_read(as1)
        assert hit is False
        assert as1.dbif._cursor_cache == {}
        assert as1.dbif.breaker.state is BreakerState.CLOSED
        assert as1.coherence.applied_seq == cluster.ddlog.head_seq

    def test_rejoin_counts_metric(self):
        cluster = make_cluster()
        cluster.kill(1)
        before = cluster.metrics.get("cluster.server_rejoins")
        cluster.rejoin(1)
        assert cluster.metrics.get("cluster.server_rejoins") == before + 1

    def test_server_count_validated(self):
        primary = R3System(R3Version.V30)
        with pytest.raises(ValueError):
            R3Cluster(primary, n_servers=0)


class TestPerServerIsolation:
    """Satellite: breaker and cursor cache are strictly per app server."""

    def test_open_breaker_does_not_fail_fast_peers(self):
        cluster = make_cluster()
        as0, as1 = cluster.servers
        for _ in range(as1.params.breaker_failure_threshold):
            as1.dbif.breaker.record_failure()
        assert as1.dbif.breaker.state is BreakerState.OPEN
        with pytest.raises(CircuitOpenError):
            as1.dbif.execute_param("SELECT matnr FROM mara", ())
        # the peer's breaker is untouched and its calls go through
        assert as0.dbif.breaker.state is BreakerState.CLOSED
        result = as0.dbif.execute_param("SELECT matnr FROM mara", ())
        assert len(result.rows) == 20
        assert as0.dbif.breaker.consecutive_failures == 0

    def test_cursor_caches_are_private(self):
        cluster = make_cluster()
        as0, as1 = cluster.servers
        as0.dbif.execute_param("SELECT matnr FROM mara WHERE mtart = ?",
                               ("T1",))
        assert as0.dbif._cursor_cache
        assert as1.dbif._cursor_cache == {}

    def test_gauge_names_do_not_collide(self):
        cluster = make_cluster()
        as0, as1 = cluster.servers
        assert as0.gauge_suffix == ""
        assert as1.gauge_suffix == ".as1"
        sources = cluster.monitor._sources
        assert "breaker_open" in sources
        assert "breaker_open.as1" in sources
        assert "buffer_quality_total.as1" in sources


class TestBufferQualityWindow:
    """Satellite: quality is per generation over active buffers only."""

    @pytest.fixture()
    def r3(self):
        system = R3System(R3Version.V22)
        system.activate_table(DDicTable("mara", TableKind.TRANSPARENT, [
            DDicField("matnr", SqlType.char(18), key=True),
            DDicField("mtart", SqlType.char(25)),
        ]))
        for i in range(20):
            system.insert_logical("mara", (f"M{i:03d}", f"T{i % 5}"))
        system.db.analyze()
        system.buffers.configure("mara", 1 << 20)
        return system

    def read(self, r3, matnr="M001"):
        return r3.open_sql.select_single(
            "SELECT SINGLE mtart FROM mara WHERE matnr = :m",
            {"m": matnr})

    def test_invalidation_resets_the_window(self, r3):
        for _ in range(4):
            self.read(r3)
        assert r3.buffers.quality == pytest.approx(0.75)
        r3.buffers.invalidate("mara")
        # fresh generation: no lookups yet -> no quality figure
        assert r3.buffers.quality is None
        self.read(r3)
        # the post-invalidation dip is visible, not averaged away ...
        assert r3.buffers.quality == 0.0
        # ... while the lifetime figure still carries the warm history
        assert r3.buffers.quality_cumulative == pytest.approx(3 / 5)

    def test_deactivated_buffer_leaves_the_denominator(self, r3):
        for _ in range(2):
            self.read(r3)
        assert r3.buffers.quality == pytest.approx(0.5)
        r3.buffers.deactivate("mara")
        assert r3.buffers.quality is None
        assert r3.buffers.quality_cumulative is None

    def test_lifetime_stats_survive_invalidation(self, r3):
        for _ in range(3):
            self.read(r3)
        r3.buffers.invalidate("mara")
        stats = r3.buffers.stats("mara")
        assert stats.lookups == 3
        assert stats.invalidations == 1
        buffer = r3.buffers.active_for("mara")
        assert buffer.window.lookups == 0
        assert buffer.window.invalidations == 1

    def test_cluster_quality_aggregates_windows(self):
        cluster = make_cluster()
        as0, as1 = cluster.servers
        warm(as0)    # 1 miss + 1 hit on as0
        warm(as1)    # 1 miss + 1 hit on as1
        assert cluster.buffer_quality() == pytest.approx(0.5)
        as0.insert_logical("mara", ("M994", "T4"))
        # as0's window restarted; only as1's warm window still counts
        assert cluster.buffer_quality() == pytest.approx(0.5)
        _active, hit, _row = buffered_read(as1)
        assert hit
        assert cluster.buffer_quality() == pytest.approx(2 / 3)
