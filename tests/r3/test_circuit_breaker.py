"""DBIF circuit breaker: state machine, metrics, trace, integration."""

import pytest

from repro.engine.errors import CircuitOpenError, ConnectionLostError
from repro.r3.appserver import R3System, R3Version
from repro.r3.dbif import BreakerState, CircuitBreaker
from repro.sim.clock import SimulatedClock
from repro.sim.faults import FaultProfile
from repro.sim.metrics import MetricsCollector
from repro.trace.tracer import Tracer


def _breaker(**kwargs):
    clock = SimulatedClock()
    metrics = MetricsCollector()
    breaker = CircuitBreaker(clock, metrics, **kwargs)
    return clock, metrics, breaker


def _trip(breaker):
    for _ in range(breaker.failure_threshold):
        breaker.record_failure()


class TestStateMachine:
    def test_starts_closed_and_tolerates_sub_threshold_failures(self):
        _clock, _metrics, breaker = _breaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.before_call()  # does not raise

    def test_success_resets_the_failure_streak(self):
        _clock, _metrics, breaker = _breaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        assert breaker.consecutive_failures == 0
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_threshold_opens(self):
        _clock, metrics, breaker = _breaker(failure_threshold=3)
        _trip(breaker)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_count == 1
        assert metrics.get("dbif.breaker.open") == 1
        assert metrics.get("dbif.breaker.failures") == 3

    def test_open_fails_fast(self):
        _clock, metrics, breaker = _breaker(failure_threshold=1,
                                            cooldown_s=10.0)
        _trip(breaker)
        for _ in range(3):
            with pytest.raises(CircuitOpenError):
                breaker.before_call()
        assert metrics.get("dbif.breaker.fast_fails") == 3

    def test_cooldown_elapses_to_half_open_then_probe_closes(self):
        clock, metrics, breaker = _breaker(failure_threshold=1,
                                           cooldown_s=10.0)
        _trip(breaker)
        clock.charge(10.0)
        breaker.before_call()  # cooldown over: probe allowed
        assert breaker.state is BreakerState.HALF_OPEN
        assert metrics.get("dbif.breaker.half_open") == 1
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.consecutive_failures == 0
        assert metrics.get("dbif.breaker.closed") == 1

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        clock, _metrics, breaker = _breaker(failure_threshold=1,
                                            cooldown_s=10.0)
        _trip(breaker)
        clock.charge(10.0)
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_count == 2
        # the new cooldown starts now, not at the first opening
        clock.charge(9.0)
        with pytest.raises(CircuitOpenError):
            breaker.before_call()
        clock.charge(1.0)
        breaker.before_call()
        assert breaker.state is BreakerState.HALF_OPEN

    def test_multiple_probes_required_when_configured(self):
        clock, _metrics, breaker = _breaker(failure_threshold=1,
                                            cooldown_s=5.0,
                                            halfopen_probes=2)
        _trip(breaker)
        clock.charge(5.0)
        breaker.before_call()
        breaker.record_success()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.before_call()  # half-open lets further probes through
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_parameter_validation(self):
        clock, metrics = SimulatedClock(), MetricsCollector()
        with pytest.raises(ValueError):
            CircuitBreaker(clock, metrics, failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(clock, metrics, cooldown_s=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(clock, metrics, halfopen_probes=0)


class TestTraceSpans:
    def test_transitions_emit_spans(self):
        clock = SimulatedClock()
        tracer = Tracer(clock, enabled=True)
        breaker = CircuitBreaker(clock, MetricsCollector(), tracer=tracer,
                                 failure_threshold=1, cooldown_s=5.0)
        _trip(breaker)
        clock.charge(5.0)
        breaker.before_call()
        breaker.record_success()
        transitions = [span.attrs["transition"]
                       for root in tracer.roots
                       for span in root.walk()
                       if span.name == "dbif.breaker"]
        assert transitions == ["closed->open", "open->half_open",
                               "half_open->closed"]
        # the spans read the clock but never charge it
        assert all(span.elapsed_s == 0.0
                   for root in tracer.roots
                   for span in root.walk())


class TestDbifIntegration:
    """The breaker wired into DatabaseInterface, driven by PR 1's
    deterministic fault injector."""

    @pytest.fixture()
    def r3(self):
        system = R3System(R3Version.V30)
        system.params.breaker_failure_threshold = 3
        system.dbif.breaker.failure_threshold = 3
        return system

    def _storm(self, r3):
        """Every round trip drops: each DBIF call exhausts its retries."""
        r3.attach_faults(FaultProfile(connection_drop_every=1,
                                      connection_drop_burst=10_000))

    def test_fault_storm_trips_breaker_then_fails_fast(self, r3):
        self._storm(r3)
        for _ in range(3):
            with pytest.raises(ConnectionLostError):
                r3.dbif.execute_param("SELECT x FROM t", ())
        assert r3.dbif.breaker.state is BreakerState.OPEN
        roundtrips = r3.metrics.get("dbif.roundtrips")
        # the open breaker sheds the call before any round trip
        with pytest.raises(CircuitOpenError):
            r3.dbif.execute_param("SELECT x FROM t", ())
        assert r3.metrics.get("dbif.roundtrips") == roundtrips
        assert r3.metrics.get("dbif.breaker.fast_fails") == 1

    def test_breaker_recloses_after_storm(self, r3):
        from repro.engine import Column, SqlType, TableSchema

        r3.db.create_table(TableSchema("t", [
            Column("x", SqlType.integer()),
        ]))
        r3.db.execute("INSERT INTO t VALUES (1)")
        self._storm(r3)
        for _ in range(3):
            with pytest.raises(ConnectionLostError):
                r3.dbif.execute_param("SELECT x FROM t", ())
        r3.detach_faults()
        r3.clock.charge(r3.dbif.breaker.cooldown_s)
        result = r3.dbif.execute_param("SELECT x FROM t", ())
        assert result.rows == [(1,)]
        assert r3.dbif.breaker.state is BreakerState.CLOSED

    def test_statement_timeout_does_not_trip_breaker(self, r3):
        from repro.engine import Column, SqlType, TableSchema
        from repro.engine.errors import StatementTimeout

        r3.db.create_table(TableSchema("t", [
            Column("x", SqlType.integer()),
        ]))
        for i in range(50):
            r3.db.execute("INSERT INTO t VALUES (?)", (i,))
        r3.dbif.statement_timeout_s = 1e-9
        for _ in range(5):
            with pytest.raises(StatementTimeout):
                r3.dbif.execute_param("SELECT x FROM t", ())
        # slow is not down: five timeouts, zero breaker failures
        assert r3.dbif.breaker.state is BreakerState.CLOSED
        assert r3.metrics.get("dbif.breaker.failures") == 0

    def test_literal_path_also_guarded(self, r3):
        self._storm(r3)
        for _ in range(3):
            with pytest.raises(ConnectionLostError):
                r3.dbif.execute_literal("SELECT x FROM t")
        with pytest.raises(CircuitOpenError):
            r3.dbif.execute_literal("SELECT x FROM t")
