"""LoadJournal wire format + engine-durable batch-input recovery.

The first half is the satellite regression for crashes *during* the
checkpoint's journal write: a truncated or bit-flipped record must read
as :class:`TornWriteError` and :meth:`LoadJournal.recover` must fall
back to the previous checkpoint instead of raising.  The second half
drives the full two-layer path: durable load, engine crash mid-phase,
ARIES recovery, app-tier reconstruction, resume, digest equality.
"""

import pytest

from repro.engine.database import Database
from repro.engine.errors import SimulatedCrash, TornWriteError
from repro.engine.wal import DurableStore
from repro.r3.appserver import R3System, R3Version
from repro.r3.batchinput import LoadJournal, PhaseProgress
from repro.sapschema.loader import load_sap_batch_input, recover_sap_system
from repro.sim.faults import FaultInjector, FaultProfile
from repro.sim.params import SimParams
from repro.tpcd.dbgen import generate


def _journal(committed=24, batches=3, setup=True):
    journal = LoadJournal()
    journal.setup_done = setup
    journal.phases["SUPPLIER"] = PhaseProgress(
        transactions_committed=committed, batches_committed=batches,
        complete=False,
    )
    return journal


class TestWireFormat:
    def test_roundtrip(self):
        journal = _journal()
        journal.phases["PART"] = PhaseProgress(
            transactions_committed=7, batches_committed=1, complete=True)
        rebuilt = LoadJournal.from_wire(journal.to_wire())
        assert rebuilt.setup_done
        assert rebuilt.phases["SUPPLIER"].transactions_committed == 24
        assert rebuilt.phases["SUPPLIER"].batches_committed == 3
        assert rebuilt.phases["PART"].complete

    @pytest.mark.parametrize("cut", [1, 5, -1])
    def test_truncated_record_is_torn_not_fatal(self, cut):
        wire = _journal().to_wire()
        with pytest.raises(TornWriteError):
            LoadJournal.from_wire(wire[:cut])

    def test_bitflip_is_torn(self):
        wire = bytearray(_journal().to_wire())
        wire[10] ^= 0xFF
        with pytest.raises(TornWriteError):
            LoadJournal.from_wire(bytes(wire))


class TestRecoverFallback:
    def test_torn_tail_falls_back_to_previous_checkpoint(self):
        # Crash mid-way through writing checkpoint 2's journal record:
        # resume must land on checkpoint 1, not raise.
        older = _journal(committed=16, batches=2).to_wire()
        torn = _journal(committed=24, batches=3).to_wire()[:-4]
        journal = LoadJournal.recover([older, torn])
        assert journal.phases["SUPPLIER"].transactions_committed == 16

    def test_skips_none_entries(self):
        wire = _journal(committed=8, batches=1).to_wire()
        journal = LoadJournal.recover([None, wire, None])
        assert journal.phases["SUPPLIER"].transactions_committed == 8

    def test_unreadable_history_restarts_from_scratch(self):
        journal = LoadJournal.recover([b"\x00\x01", b""])
        assert not journal.setup_done
        assert journal.phases == {}

    def test_empty_history_is_fresh(self):
        journal = LoadJournal.recover([])
        assert not journal.setup_done


class TestEndToEndDurableLoad:
    SF = 0.0001

    def _durable_r3(self):
        params = SimParams()
        params.wal_checkpoint_every_records = 1500
        store = DurableStore(params)
        r3 = R3System(R3Version.V22, params=params, durability="wal",
                      store=store)
        return r3, store

    def _reference_digest(self, data):
        r3 = R3System(R3Version.V22)
        load_sap_batch_input(r3, data, processes=1, commit_interval=8)
        return r3.db.content_digest()

    def test_crash_recover_resume_matches_uncrashed_load(self):
        data = generate(self.SF)
        reference = self._reference_digest(data)
        r3, store = self._durable_r3()
        profile = FaultProfile(name="e2e", seed=42,
                               crash_at_durability_op=4000,
                               torn_write_prob=1.0)
        r3.attach_faults(FaultInjector(profile, r3.db.clock, r3.metrics))
        journal = LoadJournal()
        with pytest.raises(SimulatedCrash):
            load_sap_batch_input(r3, data, processes=1,
                                 commit_interval=8, journal=journal)
        assert store.frozen
        recovered, journal, report = recover_sap_system(store)
        assert journal.setup_done
        load_sap_batch_input(recovered, data, processes=1,
                             commit_interval=8, journal=journal)
        assert recovered.db.content_digest() == reference

    def test_recovered_journal_never_overstates_progress(self):
        data = generate(self.SF)
        r3, store = self._durable_r3()
        profile = FaultProfile(name="e2e-early", seed=42,
                               crash_at_durability_op=800)
        r3.attach_faults(FaultInjector(profile, r3.db.clock, r3.metrics))
        journal = LoadJournal()
        with pytest.raises(SimulatedCrash):
            load_sap_batch_input(r3, data, processes=1,
                                 commit_interval=8, journal=journal)
        recovered, journal, report = recover_sap_system(store)
        # every journalled row must actually exist in the recovered db
        db = recovered.db
        for name, progress in journal.phases.items():
            assert progress.transactions_committed >= 0
        if journal.setup_done:
            assert db.catalog.has_table("lfa1")
            committed = journal.phases.get("SUPPLIER")
            if committed is not None:
                rows = db.execute("SELECT COUNT(*) FROM lfa1").rows
                assert rows[0][0] >= committed.transactions_committed

    def test_recover_on_empty_store_is_fresh_start(self):
        params = SimParams()
        store = DurableStore(params)
        db = Database(params=params, durability="wal", store=store)
        db.crash()
        recovered, journal, report = recover_sap_system(store)
        assert not journal.setup_done
        assert report.loser_txns == 0
        data = generate(self.SF)
        load_sap_batch_input(recovered, data, processes=1,
                             commit_interval=8, journal=journal)
        assert recovered.db.content_digest() == \
            self._reference_digest(data)
