import datetime

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.types import SqlType
from repro.r3.ddic import (
    DataDictionary,
    DDicField,
    DDicTable,
    TableKind,
)
from repro.r3.errors import DDicError
from repro.r3.pools import (
    ClusterContainer,
    PoolContainer,
    decode_row,
    encode_row,
)


def _pool_table():
    return DDicTable("a004", TableKind.POOL, [
        DDicField("kschl", SqlType.char(4), key=True),
        DDicField("matnr", SqlType.char(18), key=True),
        DDicField("knumh", SqlType.char(10)),
    ], container="kapol")


def _cluster_table():
    return DDicTable("konv", TableKind.CLUSTER, [
        DDicField("knumv", SqlType.char(10), key=True),
        DDicField("kposn", SqlType.char(6), key=True),
        DDicField("kschl", SqlType.char(4)),
        DDicField("kbetr", SqlType.decimal()),
    ], container="koclu", cluster_key_length=1)


class TestDataDictionary:
    def test_define_and_lookup(self):
        ddic = DataDictionary()
        ddic.define(_pool_table())
        assert ddic.lookup("A004").kind is TableKind.POOL

    def test_duplicate_rejected(self):
        ddic = DataDictionary()
        ddic.define(_pool_table())
        with pytest.raises(DDicError):
            ddic.define(_pool_table())

    def test_unknown_table(self):
        with pytest.raises(DDicError):
            DataDictionary().lookup("nope")

    def test_key_fields(self):
        table = _pool_table()
        assert [f.name for f in table.key_fields] == ["kschl", "matnr"]

    def test_encapsulated_needs_container(self):
        with pytest.raises(DDicError):
            DDicTable("x", TableKind.POOL,
                      [DDicField("a", SqlType.char(1), key=True)])

    def test_cluster_needs_cluster_key(self):
        with pytest.raises(DDicError):
            DDicTable("x", TableKind.CLUSTER,
                      [DDicField("a", SqlType.char(1), key=True)],
                      container="c")

    def test_transparent_schema_gets_mandt_first(self):
        table = DDicTable("vbak", TableKind.TRANSPARENT, [
            DDicField("vbeln", SqlType.char(10), key=True),
            DDicField("netwr", SqlType.decimal()),
        ])
        schema = table.to_table_schema()
        assert schema.columns[0].name == "mandt"
        assert schema.primary_key == ["mandt", "vbeln"]

    def test_convert_to_transparent(self):
        ddic = DataDictionary()
        table = ddic.define(_pool_table())
        ddic.convert_to_transparent("a004")
        assert table.kind is TableKind.TRANSPARENT
        assert table.container is None
        with pytest.raises(DDicError):
            ddic.convert_to_transparent("a004")

    def test_count_by_kind(self):
        ddic = DataDictionary()
        ddic.define(_pool_table())
        ddic.define(_cluster_table())
        counts = ddic.count_by_kind()
        assert counts[TableKind.POOL] == 1
        assert counts[TableKind.CLUSTER] == 1


class TestEncoding:
    def test_roundtrip_all_types(self):
        fields = [
            DDicField("a", SqlType.char(5)),
            DDicField("b", SqlType.integer()),
            DDicField("c", SqlType.decimal()),
            DDicField("d", SqlType.date()),
        ]
        row = ("hi", 42, -3.25, datetime.date(1995, 6, 17))
        assert decode_row(encode_row(row), fields) == row

    def test_none_roundtrip(self):
        fields = [DDicField("a", SqlType.char(5))]
        assert decode_row(encode_row((None,)), fields) == (None,)

    def test_corrupt_row_detected(self):
        fields = [DDicField("a", SqlType.char(5)),
                  DDicField("b", SqlType.char(5))]
        with pytest.raises(DDicError):
            decode_row("only-one", fields)

    @settings(max_examples=50, deadline=None)
    @given(st.tuples(
        st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                max_size=8).filter(lambda s: "\x1e" not in s),
        st.integers(-10**6, 10**6),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
    ))
    def test_roundtrip_property(self, values):
        fields = [
            DDicField("a", SqlType.char(16)),
            DDicField("b", SqlType.integer()),
            DDicField("c", SqlType.decimal()),
        ]
        decoded = decode_row(encode_row(values), fields)
        assert decoded[0] == values[0]
        assert decoded[1] == values[1]
        assert decoded[2] == pytest.approx(float(values[2]))


class TestPoolContainer:
    def test_physical_row_shape(self):
        container = PoolContainer("kapol")
        table = _pool_table()
        row = ("301", "PR00", "M1", "H1")
        physical = container.physical_row(table, row)
        assert physical[0] == "a004"
        assert physical[1] == "301|PR00|M1"
        assert PoolContainer.decode(table, physical[2]) == row

    def test_physical_schema(self):
        schema = PoolContainer("kapol").physical_schema()
        assert schema.primary_key == ["tabname", "varkey"]


class TestClusterContainer:
    def _container(self):
        return ClusterContainer("koclu", [
            DDicField("knumv", SqlType.char(10), key=True)
        ])

    def test_pack_and_decode(self):
        container = self._container()
        table = _cluster_table()
        rows = [("V1", f"{i:06d}", "DISC", float(i)) for i in range(10)]
        pages = container.physical_rows("301", ("V1",), rows)
        assert all(page[0] == "301" and page[1] == "V1" for page in pages)
        decoded = []
        for page in pages:
            decoded.extend(ClusterContainer.decode_page(table, page[-1]))
        assert decoded == rows

    def test_large_cluster_spans_pages(self):
        container = self._container()
        table = _cluster_table()
        rows = [("V1", f"{i:06d}", "DISC", float(i)) for i in range(200)]
        pages = container.physical_rows("301", ("V1",), rows)
        assert len(pages) > 1
        assert [page[2] for page in pages] == list(range(len(pages)))

    def test_empty_cluster(self):
        container = self._container()
        assert container.physical_rows("301", ("V1",), []) == []

    def test_physical_schema_keys(self):
        schema = self._container().physical_schema()
        assert schema.primary_key == ["mandt", "knumv", "pagno"]
