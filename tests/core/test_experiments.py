"""Shape tests: do the reproduced experiments show the paper's effects?"""

import pytest

from repro.core import experiments as ex
from repro.core import paperdata


@pytest.fixture(scope="module")
def table2(tpcd_data, rdbms_db, r3_22):
    return ex.table2_dbsize(data=tpcd_data, db=rdbms_db, r3=r3_22)


class TestTable1:
    def test_inventory_matches_paper(self):
        rows = ex.table1_schema_mapping()
        assert len(rows) == 17
        names = {row[0] for row in rows}
        assert {"KONV", "VBAP", "MARA", "STXL"} <= names


class TestTable2:
    def test_sap_data_is_several_times_larger(self, table2):
        """Paper: ~10x data inflation.  Shape: well above 3x."""
        assert table2.data_inflation > 3.0

    def test_sap_indexes_are_several_times_larger(self, table2):
        """Paper: ~8x index inflation.  Shape: well above 2x."""
        assert table2.index_inflation > 2.0

    def test_lineitem_dominates_both_databases(self, table2):
        entities = table2.entities
        biggest_orig = max(entities, key=lambda e: entities[e]["orig_data"])
        biggest_sap = max(entities, key=lambda e: entities[e]["sap_data"])
        assert biggest_orig == biggest_sap == "LINEITEM"

    def test_every_entity_is_inflated(self, table2):
        for entity, entry in table2.entities.items():
            if entity in ("REGION", "NATION"):
                continue  # page-granularity noise on 5/25-row tables
            assert entry["sap_data"] > entry["orig_data"], entity

    def test_paper_reported_inflations(self):
        orig_d, orig_i = paperdata.TABLE2_TOTAL_ORIGINAL_KB
        sap_d, sap_i = paperdata.TABLE2_TOTAL_SAP_KB
        assert sap_d / orig_d == pytest.approx(10.4, abs=0.2)
        assert sap_i / orig_i == pytest.approx(8.2, abs=0.2)


class TestTable3:
    @pytest.fixture(scope="class")
    def timings(self):
        return ex.table3_loading(scale_factor=0.0003)

    def test_orders_dominate(self, timings):
        other = sum(v for k, v in timings.elapsed.items()
                    if k != "ORDER+LINEITEM")
        assert timings.elapsed["ORDER+LINEITEM"] > 2 * other

    def test_ordering_matches_paper(self, timings):
        """PARTSUPP > PART > CUSTOMER > SUPPLIER in the paper."""
        assert timings.elapsed["PARTSUPP"] > timings.elapsed["CUSTOMER"]
        assert timings.elapsed["CUSTOMER"] > timings.elapsed["SUPPLIER"]


class TestTable6:
    @pytest.fixture(scope="class")
    def result(self, r3_30):
        return ex.table6_plan_choice(r3_30)

    def test_high_selectivity_fast_for_both(self, result):
        assert result.times[("native", "high")] < 1.0
        assert result.times[("open", "high")] < 1.0

    def test_open_low_selectivity_disaster(self, result):
        """The headline: blind parameterized plan is an order of
        magnitude worse (paper: 4m56s vs 1h50m)."""
        native_low = result.times[("native", "low")]
        open_low = result.times[("open", "low")]
        assert open_low > 10 * native_low

    def test_plans_differ(self, result):
        assert "SeqScan" in result.plans["native_low"]
        assert "IndexRangeScan" in result.plans["open_low"]

    def test_same_rows_either_way(self, result):
        assert result.rows[("native", "low")] == \
            result.rows[("open", "low")]
        assert result.rows[("native", "high")] == 0


class TestTable7:
    @pytest.fixture(scope="class")
    def result(self, r3_30):
        return ex.table7_aggregation(r3_30)

    def test_open_costs_multiple_of_native(self, result):
        """Paper: 13m48s vs 4m11s (3.3x)."""
        assert result.open_s > 2 * result.native_s

    def test_results_identical(self, result):
        assert result.rows_match


class TestTable8:
    @pytest.fixture(scope="class")
    def result(self, r3_30):
        return ex.table8_caching(r3_30)

    def test_small_cache_is_a_wash(self, result):
        none_cost = result.configs["none"][1]
        small_cost = result.configs["small"][1]
        assert small_cost == pytest.approx(none_cost, rel=0.5)

    def test_large_cache_wins_big(self, result):
        """Paper: 1h48m -> 35m (3x); the shape bound is 2x."""
        none_cost = result.configs["none"][1]
        large_cost = result.configs["large"][1]
        assert none_cost > 2 * large_cost

    def test_hit_ratios_ordered(self, result):
        assert result.configs["none"][0] == 0.0
        assert 0.0 < result.configs["small"][0] < 0.6
        assert result.configs["large"][0] > 0.6


class TestTable9:
    @pytest.fixture(scope="class")
    def results(self, r3_30):
        return ex.table9_warehouse(r3_30)

    def test_all_eight_tables_extracted(self, results, tpcd_data):
        assert set(results) == {
            "REGION", "NATION", "SUPPLIER", "PART", "PARTSUPP",
            "CUSTOMER", "ORDER", "LINEITEM",
        }
        assert results["LINEITEM"].rows == len(tpcd_data.lineitem)
        assert results["ORDER"].rows == len(tpcd_data.orders)

    def test_lineitem_dominates_cost(self, results):
        lineitem = results["LINEITEM"].elapsed_s
        rest = sum(r.elapsed_s for name, r in results.items()
                   if name != "LINEITEM")
        assert lineitem > rest

    def test_extraction_reconstructs_keys(self, r3_30, tpcd_data):
        from repro.warehouse.extract import extract_region

        lines = extract_region(r3_30)
        keys = sorted(int(line.split("|")[0]) for line in lines)
        assert keys == [0, 1, 2, 3, 4]
