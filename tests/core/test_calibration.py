"""Calibration-robustness tests.

The reproduction's claim is that the paper's qualitative conclusions
are functions of *operation counts*, not of the calibration constants.
These tests perturb the constants and check the directions survive.
"""

import pytest

from repro.core.calibration import paper_calibrated_params, perturbed
from repro.core.powertest import build_sap_system
from repro.r3.appserver import R3Version
from repro.reports import native30, open30
from repro.sim.params import SimParams
from tests.conftest import SF


class TestPerturbationHelper:
    def test_uniform_scaling(self):
        params = perturbed(2.0)
        base = SimParams()
        assert params.roundtrip_s == base.roundtrip_s * 2
        assert params.seq_read_s == base.seq_read_s * 2

    def test_single_field(self):
        params = perturbed(3.0, "abap_row_s")
        base = SimParams()
        assert params.abap_row_s == base.abap_row_s * 3
        assert params.roundtrip_s == base.roundtrip_s

    def test_unknown_field(self):
        with pytest.raises(ValueError):
            perturbed(2.0, "page_size_bytes")

    def test_defaults_are_calibrated_instance(self):
        assert paper_calibrated_params() == SimParams()


class TestUniformScalingPreservesRatios:
    def test_pure_clock_change_scales_everything(self, tpcd_data):
        def measure(params):
            r3 = build_sap_system(tpcd_data, R3Version.V30, params)
            suite = native30.make_queries(SF)
            span = r3.measure()
            suite[6](r3)
            return span.stop()

        base = measure(SimParams())
        doubled = measure(perturbed(2.0))
        assert doubled == pytest.approx(2 * base, rel=1e-6)


class TestDirectionsSurvivePerturbation:
    @pytest.mark.parametrize("field,factor", [
        ("roundtrip_s", 2.0),
        ("roundtrip_s", 0.5),
        ("abap_row_s", 2.0),
        ("random_read_s", 0.5),
    ])
    def test_open_grouping_penalty_robust(self, tpcd_data, field, factor):
        """Q1 (complex aggregation) must stay cheaper when pushed down
        (native) than when grouped in ABAP over shipped rows (open),
        for any reasonable perturbation of a single constant."""
        params = perturbed(factor, field)
        r3 = build_sap_system(tpcd_data, R3Version.V30, params)
        native_suite = native30.make_queries(SF)
        open_suite = open30.make_queries(SF)
        span = r3.measure()
        native_suite[1](r3)
        t_native = span.stop()
        span = r3.measure()
        open_suite[1](r3)
        t_open = span.stop()
        assert t_open > t_native
