"""Throughput-test extension (the power test's concurrent sibling)."""

import pytest

from repro.core.throughput import run_throughput_test
from repro.reports import native30
from tests.conftest import SF


@pytest.fixture(scope="module")
def suite():
    return native30.make_queries(SF)


class TestThroughput:
    def test_single_stream_covers_all_queries(self, r3_30, suite):
        result = run_throughput_test(r3_30, suite, streams=1)
        names = {name for _s, name in result.per_query}
        assert names == {f"Q{n}" for n in range(1, 18)}
        assert result.queries_run == 17
        assert result.elapsed_s > 0

    def test_two_streams_run_34_queries(self, r3_30, suite):
        result = run_throughput_test(r3_30, suite, streams=2)
        assert result.queries_run == 34
        assert result.stream_elapsed(0) > 0
        assert result.stream_elapsed(1) > 0

    def test_queries_per_hour_metric(self, r3_30, suite):
        result = run_throughput_test(r3_30, suite, streams=1)
        expected = 17 * 3600.0 / result.elapsed_s
        assert result.queries_per_hour == pytest.approx(expected)

    def test_second_stream_benefits_from_warm_caches(self, r3_30,
                                                     suite):
        """Interleaving is not free serialization: stream 1 reuses the
        buffer pool and cursor cache stream 0 warmed."""
        r3_30.db.buffer_pool.clear()
        r3_30.dbif.flush_cursor_cache()
        cold = run_throughput_test(r3_30, suite, streams=1)
        warm = run_throughput_test(r3_30, suite, streams=1)
        assert warm.elapsed_s <= cold.elapsed_s

    def test_stream_count_validated(self, r3_30, suite):
        with pytest.raises(ValueError):
            run_throughput_test(r3_30, suite, streams=0)
        with pytest.raises(ValueError):
            run_throughput_test(r3_30, suite, streams=99)

    def test_update_stream_consumes_distinct_sets(self, tpcd_data):
        from repro.core.powertest import build_sap_system
        from repro.r3.appserver import R3Version
        from repro.tpcd.dbgen import delete_keys, generate_refresh_orders

        r3 = build_sap_system(tpcd_data, R3Version.V30)
        refresh = generate_refresh_orders(tpcd_data, seed=123)
        doomed = delete_keys(tpcd_data, seed=321)
        result = run_throughput_test(
            r3, native30.make_queries(SF), streams=2,
            update_sets=[(refresh, doomed)],
        )
        assert result.update_s > 0
        # inserted documents are visible afterwards
        from repro.sapschema.mapping import KeyCodec

        new_vbeln = KeyCodec.vbeln(refresh.orders[0][0])
        assert r3.open_sql.select_single(
            "SELECT SINGLE vbeln FROM vbak WHERE vbeln = :v",
            {"v": new_vbeln}) is not None
