"""Throughput-test extension (the power test's concurrent sibling)."""

import pytest

from repro.core.throughput import (
    _STREAM_PERMUTATIONS,
    run_throughput_test,
    stream_permutation,
)
from repro.r3.dispatcher import DispatcherConfig
from repro.reports import native30
from tests.conftest import SF


@pytest.fixture(scope="module")
def suite():
    return native30.make_queries(SF)


class TestThroughput:
    def test_single_stream_covers_all_queries(self, r3_30, suite):
        result = run_throughput_test(r3_30, suite, streams=1)
        names = {name for _s, name in result.per_query}
        assert names == {f"Q{n}" for n in range(1, 18)}
        assert result.queries_run == 17
        assert result.elapsed_s > 0

    def test_two_streams_run_34_queries(self, r3_30, suite):
        result = run_throughput_test(r3_30, suite, streams=2)
        assert result.queries_run == 34
        assert result.stream_elapsed(0) > 0
        assert result.stream_elapsed(1) > 0
        assert result.conservation_ok()

    def test_queries_per_hour_metric(self, r3_30, suite):
        result = run_throughput_test(r3_30, suite, streams=1)
        expected = 17 * 3600.0 / result.elapsed_s
        assert result.queries_per_hour == pytest.approx(expected)

    def test_second_stream_benefits_from_warm_caches(self, r3_30,
                                                     suite):
        """Interleaving is not free serialization: stream 1 reuses the
        buffer pool and cursor cache stream 0 warmed."""
        r3_30.db.buffer_pool.clear()
        r3_30.dbif.flush_cursor_cache()
        cold = run_throughput_test(r3_30, suite, streams=1)
        warm = run_throughput_test(r3_30, suite, streams=1)
        assert warm.elapsed_s <= cold.elapsed_s

    def test_stream_count_validated(self, r3_30, suite):
        with pytest.raises(ValueError):
            run_throughput_test(r3_30, suite, streams=0)

    def test_update_stream_consumes_distinct_sets(self, tpcd_data):
        from repro.core.powertest import build_sap_system
        from repro.r3.appserver import R3Version
        from repro.tpcd.dbgen import delete_keys, generate_refresh_orders

        r3 = build_sap_system(tpcd_data, R3Version.V30)
        refresh = generate_refresh_orders(tpcd_data, seed=123)
        doomed = delete_keys(tpcd_data, seed=321)
        result = run_throughput_test(
            r3, native30.make_queries(SF), streams=2,
            update_sets=[(refresh, doomed)],
        )
        assert result.update_s > 0
        assert result.updates_submitted == result.updates_run == 1
        # inserted documents are visible afterwards
        from repro.sapschema.mapping import KeyCodec

        new_vbeln = KeyCodec.vbeln(refresh.orders[0][0])
        assert r3.open_sql.select_single(
            "SELECT SINGLE vbeln FROM vbak WHERE vbeln = :v",
            {"v": new_vbeln}) is not None


class TestStreamPermutations:
    """Streams beyond the spec's eight cycle with a per-cycle rotation."""

    def test_first_eight_are_the_spec_orderings(self):
        for stream in range(8):
            assert stream_permutation(stream) == \
                _STREAM_PERMUTATIONS[stream]

    def test_ninth_stream_no_longer_crashes(self):
        # regression: _STREAM_PERMUTATIONS[8] used to IndexError
        perm = stream_permutation(8)
        base = _STREAM_PERMUTATIONS[0]
        assert perm == base[1:] + base[:1]
        assert sorted(perm) == list(range(1, 18))

    def test_cycles_rotate_deterministically(self):
        for stream in (9, 16, 23, 40):
            perm = stream_permutation(stream)
            base = _STREAM_PERMUTATIONS[stream % 8]
            rotation = (stream // 8) % 17
            assert perm == base[rotation:] + base[:rotation]
            assert sorted(perm) == list(range(1, 18))

    def test_negative_stream_rejected(self):
        with pytest.raises(ValueError):
            stream_permutation(-1)

    def test_nine_streams_run_end_to_end(self, r3_30, suite):
        result = run_throughput_test(r3_30, suite, streams=9)
        assert result.queries_run == 9 * 17
        assert result.conservation_ok()
        # streams 0 and 8 share a base permutation but run it rotated
        assert stream_permutation(0) != stream_permutation(8)


class TestDispatcherIdentity:
    """With the unconstrained default config the dispatcher schedule is
    tick-for-tick the old round-robin loop it replaced."""

    def _reference_round_robin(self, r3, suite, streams, update_sets):
        """The pre-dispatcher implementation, verbatim."""
        per_query = {}
        update_s = 0.0
        pending_updates = list(update_sets or [])
        positions = [0] * streams
        total_span = r3.measure()
        step = 0
        while any(pos < 17 for pos in positions):
            stream = step % streams
            step += 1
            pos = positions[stream]
            if pos >= 17:
                continue
            number = _STREAM_PERMUTATIONS[stream][pos]
            span = r3.measure()
            suite[number](r3)
            per_query[(stream, f"Q{number}")] = span.stop()
            positions[stream] += 1
            if pending_updates and step % streams == 0:
                from repro.reports.updatefuncs import (
                    run_uf1_sap,
                    run_uf2_sap,
                )

                refresh, doomed = pending_updates.pop(0)
                span = r3.measure()
                if refresh is not None:
                    run_uf1_sap(r3, refresh)
                if doomed:
                    run_uf2_sap(r3, doomed)
                update_s += span.stop()
        return per_query, update_s, total_span.stop()

    def test_unconstrained_dispatcher_is_zero_tick(self, tpcd_data):
        from repro.core.powertest import build_sap_system
        from repro.r3.appserver import R3Version
        from repro.tpcd.dbgen import delete_keys, generate_refresh_orders

        suite = native30.make_queries(SF)
        update_sets = [(generate_refresh_orders(tpcd_data, seed=123),
                        delete_keys(tpcd_data, seed=321))]
        old = build_sap_system(tpcd_data, R3Version.V30)
        per_query, update_s, elapsed = self._reference_round_robin(
            old, suite, 2, [tuple(update_sets[0])])
        new = build_sap_system(tpcd_data, R3Version.V30)
        result = run_throughput_test(new, suite, streams=2,
                                     update_sets=update_sets)
        # identical schedule, identical clock: exact equality, not approx
        assert result.per_query == per_query
        assert result.update_s == update_s
        assert result.elapsed_s == elapsed
        assert result.queue_wait_s == 0.0
        assert result.rejected == 0 and result.shed == 0

    def test_unconstrained_charges_no_roll_costs(self, r3_30, suite):
        before = r3_30.metrics.snapshot()
        run_throughput_test(r3_30, suite, streams=2)
        assert before.get("dispatcher.rollin_s") == 0
        assert before.get("dispatcher.rollout_s") == 0


class TestConstrainedPool:
    def test_sixteen_streams_queue_behind_four_processes(self, r3_30,
                                                         suite):
        config = DispatcherConfig(dialog_processes=4, update_processes=1,
                                  queue_capacity=32)
        result = run_throughput_test(r3_30, suite, streams=16,
                                     dispatcher=config)
        assert result.queries_run == 16 * 17
        assert result.conservation_ok()
        # per-stream queue-wait breakdown: the pool is outnumbered, so
        # every stream spends simulated time in the dispatcher queue
        for stream in range(16):
            assert result.stream_queue_wait(stream) > 0
        assert result.queue_wait_s == pytest.approx(sum(
            result.stream_queue_wait(s) for s in range(16)))

    def test_full_queue_rejects_with_typed_error(self, r3_30, suite):
        config = DispatcherConfig(dialog_processes=1, update_processes=0,
                                  queue_capacity=2)
        result = run_throughput_test(r3_30, suite, streams=8,
                                     dispatcher=config)
        assert result.rejected > 0
        assert result.conservation_ok()
        # rejected queries are resolved (skipped), never served
        assert result.queries_run == 8 * 17 - result.rejected
