"""Pinned heap timings: the default backend is tick-identical to seed.

The LSM backend and the sequential-write cost class must not move the
heap path by a single simulated tick — the heap's charging code is
byte-identical (``self_charging`` is False, so every branch the LSM
added is skipped), and these exact-equality pins prove it.  The floats
below were captured on the pre-LSM tree; any drift here is a real
behavioral change to the default engine, not noise (the simulator is
deterministic).
"""

import repro.core  # noqa: F401  (resolves the engine<->core import cycle)
from repro.core.experiments import table3_loading
from repro.core.powertest import run_power_test
from repro.r3.appserver import R3Version

#: run_power_test(0.001, V30) per-variant totals on the pre-LSM tree
POWER_PINS = {
    "rdbms": 4.648791555983359,
    "native": 18.819658866084865,
    "open": 52.10815188287779,
}

#: table3_loading(0.0005, processes=1) per-entity elapsed, pre-LSM tree
BATCH_INPUT_PINS = {
    "SUPPLIER": 3.4770199999999947,
    "PART": 87.29990000000407,
    "PARTSUPP": 278.366879999987,
    "CUSTOMER": 51.29375999999252,
    "ORDER+LINEITEM": 1118.4087015983223,
}


def test_power_test_heap_is_tick_identical():
    result = run_power_test(0.001, R3Version.V30)
    assert {v: result.total(v) for v in POWER_PINS} == POWER_PINS


def test_batch_input_heap_is_tick_identical():
    timings = table3_loading(scale_factor=0.0005, processes=1)
    assert timings.elapsed == BATCH_INPUT_PINS
