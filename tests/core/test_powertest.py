"""Power-test harness + headline shape assertions (Tables 4 and 5).

These run at SF 0.002 — the smallest scale at which the paper's
aggregate orderings are stable (below that, everything fits in the
buffer pool and the interface-crossing costs dominate differently).
"""

import pytest

from repro.core import paperdata
from repro.core.powertest import run_power_test
from repro.core.results import ratio
from repro.r3.appserver import R3Version
from repro.tpcd.dbgen import generate

SF = 0.002


@pytest.fixture(scope="module")
def data():
    return generate(SF)


@pytest.fixture(scope="module")
def result30(data):
    return run_power_test(SF, R3Version.V30, data=data,
                          include_updates=True)


@pytest.fixture(scope="module")
def result22(data):
    return run_power_test(SF, R3Version.V22, data=data,
                          include_updates=False)


class TestHarness:
    def test_all_variants_and_queries_present(self, result30):
        assert set(result30.times) == {"rdbms", "native", "open"}
        for variant in result30.times.values():
            assert set(variant) == set(paperdata.QUERIES +
                                       paperdata.UPDATES)

    def test_22_runs_without_updates(self, result22):
        assert "UF1" not in result22.times["rdbms"]

    def test_row_counts_agree_across_variants(self, result30):
        for name in paperdata.QUERIES:
            counts = {
                variant: result30.row_counts[variant][name]
                for variant in result30.row_counts
            }
            assert len(set(counts.values())) == 1, (name, counts)

    def test_sap_update_functions_identical(self, result30):
        assert result30.times["native"]["UF1"] == \
            result30.times["open"]["UF1"]
        assert result30.times["native"]["UF2"] == \
            result30.times["open"]["UF2"]

    def test_render(self, result30):
        text = result30.render()
        assert "Q17" in text and "Total (all)" in text
        assert "3.0E" in text


class TestHeadlineShapes30:
    def test_rdbms_fastest_overall(self, result30):
        """Paper Table 5: RDBMS 1h12m, Native 4h10m, Open 6h06m."""
        rdbms = result30.total("rdbms", queries_only=True)
        assert result30.total("native", queries_only=True) > 2 * rdbms
        assert result30.total("open", queries_only=True) > 2 * rdbms

    def test_open_slower_than_native_overall(self, result30):
        assert result30.total("open", queries_only=True) > \
            result30.total("native", queries_only=True)

    def test_unnested_queries_are_opens_best(self, result30):
        """Paper: on Q2/Q11/Q16 Open SQL (manually unnested) matches or
        beats Native SQL, against a ~2-4x deficit elsewhere.  Shape:
        the open/native ratio on those queries is far below the
        overall ratio."""
        times = result30.times
        overall = ratio(result30.total("open", queries_only=True),
                        result30.total("native", queries_only=True))
        for name in ("Q2", "Q11", "Q16"):
            per_query = ratio(times["open"][name], times["native"][name])
            assert per_query < overall

    def test_uf1_much_slower_on_sap(self, result30):
        """Paper: 1m40s direct vs 1h47m batch input."""
        assert result30.times["native"]["UF1"] > \
            5 * result30.times["rdbms"]["UF1"]

    def test_complex_aggregation_queries_favor_native(self, result30):
        """Q1/Q5/Q9 ship every joined row for ABAP grouping in Open."""
        times = result30.times
        for name in ("Q1", "Q5", "Q9"):
            assert times["open"][name] > times["native"][name]


class TestUpgradeEffect:
    def test_open_sql_halves_with_the_upgrade(self, result22, result30):
        """Paper: Open total 13h14m (2.2) -> 6h06m (3.0)."""
        open22 = result22.total("open", queries_only=True)
        open30 = result30.total("open", queries_only=True)
        assert open30 < 0.7 * open22

    def test_native_gains_too(self, result22, result30):
        """Paper: Native total 6h26m -> 4h10m."""
        assert result30.total("native", queries_only=True) < \
            result22.total("native", queries_only=True)

    def test_22_open_slower_than_22_native(self, result22):
        """Paper Table 4: Open 13h14m vs Native 6h26m."""
        assert result22.total("open", queries_only=True) > \
            result22.total("native", queries_only=True)

    def test_q1_dominated_by_konv_in_22(self, result22):
        """Paper: Q1 takes ~2h15m under BOTH 2.2 interfaces (the KONV
        cluster loop dominates whichever interface drives it)."""
        times = result22.times
        assert times["native"]["Q1"] > 3 * times["rdbms"]["Q1"]
        assert times["open"]["Q1"] > 3 * times["rdbms"]["Q1"]

    def test_q3_the_worst_22_open_query_improves(self, result22,
                                                 result30):
        """Paper: Q3 Open went from 3h12m to 11m51s."""
        assert result30.times["open"]["Q3"] < \
            result22.times["open"]["Q3"]

    def test_paper_totals_sanity(self):
        t4 = paperdata.TABLE4_22G_S
        t5 = paperdata.TABLE5_30E_S
        assert paperdata.total(t4["open"]) > paperdata.total(t4["native"])
        assert paperdata.total(t5["open"], queries_only=True) < \
            paperdata.total(t4["open"], queries_only=True)
