"""Power test under faults: per-query timeout and graceful degradation."""

import pytest

from repro.core import paperdata
from repro.core.powertest import run_power_test
from repro.r3.appserver import R3Version
from repro.tpcd.dbgen import generate

SF = 0.0005


@pytest.fixture(scope="module")
def data():
    return generate(SF)


class TestTimeoutDegradation:
    def test_tiny_timeout_degrades_but_suite_completes(self, data):
        result = run_power_test(SF, R3Version.V30, variants=("rdbms",),
                                include_updates=False, data=data,
                                query_timeout_s=0.05)
        times = result.times["rdbms"]
        # Every query is present: the suite never aborts.
        assert set(times) == set(paperdata.QUERIES)
        failed = result.failures["rdbms"]
        assert failed  # at SF 0.0005 several queries exceed 0.05s
        for name, reason in failed.items():
            assert "StatementTimeout" in reason
            assert times[name] >= 0  # partial charge recorded
            assert name not in result.row_counts["rdbms"]
        assert set(result.completed("rdbms")) == \
            set(times) - set(failed)
        assert result.completed_total("rdbms") <= result.total("rdbms")

    def test_render_marks_failures(self, data):
        result = run_power_test(SF, R3Version.V30, variants=("rdbms",),
                                include_updates=False, data=data,
                                query_timeout_s=0.05)
        rendered = result.render()
        assert " !" in rendered
        assert "Total (compl.)" in rendered
        assert "partial" in rendered

    def test_generous_timeout_changes_nothing(self, data):
        plain = run_power_test(SF, R3Version.V30, variants=("rdbms",),
                               include_updates=False, data=data)
        timed = run_power_test(SF, R3Version.V30, variants=("rdbms",),
                               include_updates=False, data=data,
                               query_timeout_s=1e9)
        assert not timed.failures["rdbms"]
        assert timed.times["rdbms"] == plain.times["rdbms"]
        assert timed.row_counts["rdbms"] == plain.row_counts["rdbms"]
        assert "!" not in timed.render()
        assert "Total (compl.)" not in timed.render()
