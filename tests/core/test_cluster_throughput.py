"""Cluster throughput scheduling: identity, determinism, failover."""

import pytest

from repro.core.powertest import build_sap_system
from repro.core.throughput import (
    run_cluster_throughput_test,
    run_throughput_test,
)
from repro.r3.appserver import R3Version
from repro.r3.cluster import ServerKill, build_sap_cluster
from repro.r3.dispatcher import DispatcherConfig
from repro.reports import native30
from tests.conftest import SF


@pytest.fixture(scope="module")
def suite():
    return native30.make_queries(SF)


def update_sets(tpcd_data):
    from repro.tpcd.dbgen import delete_keys, generate_refresh_orders

    return [(generate_refresh_orders(tpcd_data, seed=123),
             delete_keys(tpcd_data, seed=321))]


class TestSingleServerIdentity:
    """n_servers=1 with coherence disabled is tick-identical to the
    plain single-server throughput test — and at one server the routing
    policy cannot matter."""

    def test_cluster_of_one_matches_plain_run_exactly(self, tpcd_data,
                                                      suite):
        plain = run_throughput_test(
            build_sap_system(tpcd_data, R3Version.V30), suite,
            streams=2, update_sets=update_sets(tpcd_data))
        for routing in ("round_robin", "sticky"):
            cluster = build_sap_cluster(tpcd_data, R3Version.V30,
                                        n_servers=1, routing=routing)
            result = run_cluster_throughput_test(
                cluster, suite, streams=2,
                update_sets=update_sets(tpcd_data))
            # identical schedule on identical clocks: exact equality
            assert result.per_query == plain.per_query
            assert result.update_s == plain.update_s
            assert result.elapsed_s == plain.elapsed_s
            assert result.queue_wait_s == plain.queue_wait_s
            assert result.conservation_ok()
            assert result.per_server_completed == {"as0": 34}
            assert result.sessions_rerouted == 0
            assert result.max_read_staleness_s == 0.0


class TestMultiServerDeterminism:
    def test_seeded_two_server_run_is_reproducible(self, tpcd_data,
                                                   suite):
        results = []
        for _ in range(2):
            cluster = build_sap_cluster(
                tpcd_data, R3Version.V30, n_servers=2,
                sync_period_s=5.0, routing="sticky",
                buffered_tables={"vbak": 256 * 1024})
            results.append(run_cluster_throughput_test(
                cluster, suite, streams=4,
                update_sets=update_sets(tpcd_data)))
        first, second = results
        # two executions from the same inputs are byte-for-byte equal
        assert first.per_query == second.per_query
        assert first.elapsed_s == second.elapsed_s
        assert first.per_server_completed == second.per_server_completed
        assert first.max_read_staleness_s == second.max_read_staleness_s
        assert first.buffer_quality == second.buffer_quality
        # and the work really was spread over both servers
        assert all(count > 0
                   for count in first.per_server_completed.values())
        assert first.conservation_ok()

    def test_staleness_never_exceeds_sync_period(self, tpcd_data, suite):
        cluster = build_sap_cluster(
            tpcd_data, R3Version.V30, n_servers=2, sync_period_s=5.0,
            routing="round_robin",
            buffered_tables={"vbak": 256 * 1024, "lfa1": 64 * 1024})
        result = run_cluster_throughput_test(
            cluster, suite, streams=4,
            update_sets=update_sets(tpcd_data))
        assert result.conservation_ok()
        assert result.max_read_staleness_s < 5.0


class TestFailover:
    def _config(self):
        return DispatcherConfig(dialog_processes=2, update_processes=1,
                                queue_capacity=8,
                                queue_wait_deadline_s=120.0,
                                shed_highwater=0.75)

    def test_kill_reroutes_and_conserves(self, tpcd_data, suite):
        cluster = build_sap_cluster(
            tpcd_data, R3Version.V30, n_servers=2, sync_period_s=5.0,
            routing="sticky", buffered_tables={"vbak": 256 * 1024})
        result = run_cluster_throughput_test(
            cluster, suite, streams=4,
            update_sets=update_sets(tpcd_data),
            dispatcher=self._config(),
            failover=[ServerKill(at_s=10.0, server=1,
                                 rejoin_after_s=30.0)])
        assert result.kills == 1
        assert result.rejoins == 1
        assert result.conservation_ok()
        # sticky sessions pinned to the dead server were re-routed
        assert result.sessions_rerouted >= 1
        assert cluster.metrics.get("cluster.server_crashes") == 1
        assert cluster.metrics.get("cluster.server_rejoins") == 1
        # the survivor served the re-routed work
        assert result.per_server_completed["as0"] > 0
        # the dead server is back up and cold at the end
        as1 = cluster.servers[1]
        assert as1.up
        assert as1.dbif._cursor_cache == {}

    def test_rejoin_beyond_workload_end_still_happens(self, tpcd_data,
                                                      suite):
        cluster = build_sap_cluster(
            tpcd_data, R3Version.V30, n_servers=2, routing="sticky")
        result = run_cluster_throughput_test(
            cluster, suite, streams=2,
            failover=[ServerKill(at_s=10.0, server=1,
                                 rejoin_after_s=10_000_000.0)])
        assert result.kills == 1
        assert result.rejoins == 1
        assert cluster.servers[1].up
        # the cluster idled (simulated) until the restart window
        assert result.elapsed_s > 10_000_000.0

    def test_exhausted_requeue_budget_sheds(self, tpcd_data, suite):
        config = self._config()
        config.max_requeues = 0
        cluster = build_sap_cluster(
            tpcd_data, R3Version.V30, n_servers=2, routing="round_robin")
        result = run_cluster_throughput_test(
            cluster, suite, streams=6, dispatcher=config,
            failover=[ServerKill(at_s=10.0, server=1)])
        assert result.conservation_ok()
        # every step drained from the dead server's queue was shed
        # rather than re-routed: the budget was already spent
        drained_shed = sum(
            count for reason, count in result.shed_reasons.items()
            if reason.startswith("requeue budget exhausted"))
        assert result.shed >= drained_shed
        assert cluster.metrics.get("dispatcher.requeued") == 0
