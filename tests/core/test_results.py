from repro.core.results import (
    duration_cell,
    kb_cell,
    ratio,
    render_table,
    shape_report,
)


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "---" in lines[2]
        assert lines[3].endswith("2")

    def test_non_string_cells(self):
        text = render_table(["x"], [[42]])
        assert "42" in text


class TestCells:
    def test_duration(self):
        assert duration_cell(None) == "-"
        assert duration_cell(65) == "1m 05s"

    def test_kb(self):
        assert kb_cell(2048) == "2"
        assert kb_cell(10 * 1024 * 1024) == "10,240"


class TestRatios:
    def test_ratio(self):
        assert ratio(10, 2) == 5
        assert ratio(0, 0) == 1.0
        assert ratio(1, 0) == float("inf")

    def test_shape_report(self):
        measured = {"Q1": 10.0}
        paper = {"Q1": 100.0}
        base_m = {"Q1": 2.0}
        base_p = {"Q1": 25.0}
        report = shape_report(measured, paper, base_m, base_p, ["Q1"])
        assert report == [("Q1", 5.0, 4.0)]
