"""The ``python -m repro`` command line."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["power"])
        assert args.sf == 0.002 and args.release == "3.0"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_all_commands_listed(self):
        from repro.__main__ import COMMANDS

        assert set(COMMANDS) == {
            "power", "dbsize", "loading", "plan-trap", "aggregation",
            "caching", "warehouse", "eis", "lint",
        }


class TestCommands:
    def test_dbsize_runs(self, capsys):
        assert main(["dbsize", "--sf", "0.0005"]) == 0
        out = capsys.readouterr().out
        assert "inflation" in out and "LINEITEM" in out

    def test_loading_runs(self, capsys):
        assert main(["loading", "--sf", "0.0003"]) == 0
        assert "ORDER+LINEITEM" in capsys.readouterr().out

    def test_power_runs(self, capsys):
        assert main(["power", "--sf", "0.0005", "--no-updates"]) == 0
        out = capsys.readouterr().out
        assert "Total (quer.)" in out

    def test_aggregation_runs(self, capsys):
        assert main(["aggregation", "--sf", "0.0005"]) == 0
        assert "match=True" in capsys.readouterr().out
