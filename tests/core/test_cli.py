"""The ``python -m repro`` command line."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["power"])
        assert args.sf == 0.002 and args.release == "3.0"

    def test_storage_flag(self):
        assert build_parser().parse_args(["power"]).storage == "heap"
        args = build_parser().parse_args(["loading", "--storage", "lsm"])
        assert args.storage == "lsm"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["power", "--storage", "btree"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_all_commands_listed(self):
        from repro.__main__ import COMMANDS

        assert set(COMMANDS) == {
            "power", "dbsize", "loading", "plan-trap", "aggregation",
            "caching", "warehouse", "eis", "lint", "trace", "bench-diff",
            "chaos", "recover", "rewrite", "monitor",
        }


class TestCommands:
    def test_dbsize_runs(self, capsys):
        assert main(["dbsize", "--sf", "0.0005"]) == 0
        out = capsys.readouterr().out
        assert "inflation" in out and "LINEITEM" in out

    def test_loading_runs(self, capsys):
        assert main(["loading", "--sf", "0.0003"]) == 0
        assert "ORDER+LINEITEM" in capsys.readouterr().out

    def test_power_runs(self, capsys):
        assert main(["power", "--sf", "0.0005", "--no-updates"]) == 0
        out = capsys.readouterr().out
        assert "Total (quer.)" in out

    def test_aggregation_runs(self, capsys):
        assert main(["aggregation", "--sf", "0.0005"]) == 0
        assert "match=True" in capsys.readouterr().out

    def test_trace_text_runs(self, capsys):
        assert main(["trace", "power", "--sf", "0.0005", "--no-updates",
                     "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "App-server s" in out and "DBIF s" in out
        assert "Top 3 operators" in out

    def test_trace_json_parses(self, capsys):
        import json

        assert main(["trace", "power", "--sf", "0.0005", "--no-updates",
                     "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["format"] == "repro-power-trace-v1"
        for variant in ("rdbms", "native", "open"):
            analysis = document["variants"][variant]["analysis"]
            assert len(analysis["queries"]) == 17

    def test_trace_rejects_unknown_target(self, capsys):
        assert main(["trace", "dbsize"]) == 2

    def test_chrome_format_is_trace_only(self, capsys):
        assert main(["lint", "--format", "chrome"]) == 2

    def test_bench_diff(self, tmp_path, capsys):
        import json

        a = tmp_path / "BENCH_a.json"
        b = tmp_path / "BENCH_b.json"
        a.write_text(json.dumps({
            "name": "bench_x", "stats": {"mean": 2.0},
            "extra_info": {"simulated_s": 100.0},
        }))
        b.write_text(json.dumps({
            "name": "bench_x", "stats": {"mean": 1.0},
            "extra_info": {"simulated_s": 150.0, "extra": 1},
        }))
        assert main(["bench-diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "extra_info.simulated_s" in out and "+50.0%" in out
        assert "B only" in out

    def test_bench_diff_needs_two_files(self, capsys):
        assert main(["bench-diff"]) == 2

    def test_bench_diff_name_mismatch_is_a_clear_error(self, tmp_path,
                                                       capsys):
        import json

        a = tmp_path / "BENCH_a.json"
        b = tmp_path / "BENCH_b.json"
        a.write_text(json.dumps({"name": "bench_x",
                                 "extra_info": {"s": 1.0}}))
        b.write_text(json.dumps({"name": "bench_y",
                                 "extra_info": {"s": 1.0}}))
        assert main(["bench-diff", str(a), str(b), "--gate", "0.5"]) == 2
        err = capsys.readouterr().err
        assert "name mismatch" in err
        assert "bench_x" in err and "bench_y" in err

    def test_bench_diff_foreign_shape_is_a_clear_error(self, tmp_path,
                                                       capsys):
        import json

        a = tmp_path / "BENCH_a.json"
        b = tmp_path / "raw.json"
        a.write_text(json.dumps({"name": "bench_x",
                                 "extra_info": {"s": 1.0}}))
        # raw pytest-benchmark output is a JSON list, not a dump
        b.write_text(json.dumps([{"stats": {"mean": 1.0}}]))
        assert main(["bench-diff", str(a), str(b)]) == 2
        err = capsys.readouterr().err
        assert "raw.json" in err and "expected a BENCH_" in err

    def test_bench_diff_missing_name_is_a_clear_error(self, tmp_path,
                                                      capsys):
        import json

        a = tmp_path / "BENCH_a.json"
        b = tmp_path / "BENCH_b.json"
        a.write_text(json.dumps({"stats": {"mean": 1.0}}))
        b.write_text(json.dumps({"name": "bench_x", "stats": {}}))
        assert main(["bench-diff", str(a), str(b)]) == 2
        assert "missing 'name'" in capsys.readouterr().err
