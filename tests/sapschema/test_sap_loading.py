import pytest

from repro.r3.appserver import R3System, R3Version
from repro.sapschema.loader import load_sap_batch_input, load_sap_fast
from repro.tpcd.dbgen import generate

TINY_SF = 0.0003


@pytest.fixture(scope="module")
def tiny_data():
    return generate(TINY_SF, seed=5)


class TestFastLoad:
    def test_loads_all_entities(self, r3_22, tpcd_data):
        counts = {
            "lfa1": len(tpcd_data.supplier),
            "mara": len(tpcd_data.part),
            "kna1": len(tpcd_data.customer),
            "vbak": len(tpcd_data.orders),
            "vbap": len(tpcd_data.lineitem),
            "vbep": len(tpcd_data.lineitem),
            "eina": len(tpcd_data.partsupp),
        }
        report = r3_22.db.storage_report()
        for table, expected in counts.items():
            assert report[table]["rows"] == expected

    def test_konv_is_clustered_in_22(self, r3_22, tpcd_data):
        report = r3_22.db.storage_report()
        assert "konv" not in report
        assert report["koclu"]["rows"] >= len(tpcd_data.orders)

    def test_views_created(self, r3_22):
        for view in ("wvbapep", "wvbakap", "weinaine", "wmaramkt",
                     "wt005tx"):
            assert r3_22.db.catalog.has_view(view)


class TestBatchInputLoad:
    def test_load_produces_timings_and_data(self, tiny_data):
        r3 = R3System(R3Version.V22)
        timings = load_sap_batch_input(r3, tiny_data, processes=2)
        assert set(timings.elapsed) == {
            "SUPPLIER", "PART", "PARTSUPP", "CUSTOMER", "ORDER+LINEITEM"
        }
        assert all(v > 0 for v in timings.elapsed.values())
        report = r3.db.storage_report()
        assert report["vbak"]["rows"] == len(tiny_data.orders)
        assert report["lfa1"]["rows"] == len(tiny_data.supplier)

    def test_orders_dominate_load_time(self, tiny_data):
        """The paper's Table 3 headline: ORDER+LINEITEM takes ~25 days
        while everything else takes hours."""
        r3 = R3System(R3Version.V22)
        timings = load_sap_batch_input(r3, tiny_data)
        others = sum(v for k, v in timings.elapsed.items()
                     if k != "ORDER+LINEITEM")
        assert timings.elapsed["ORDER+LINEITEM"] > others

    def test_parallel_processes_halve_effective_time(self, tiny_data):
        r3 = R3System(R3Version.V22)
        timings = load_sap_batch_input(r3, tiny_data, processes=2)
        assert timings.effective("PART") == \
            pytest.approx(timings.elapsed["PART"] / 2)

    def test_batch_load_equivalent_to_fast_load(self, tiny_data):
        slow = R3System(R3Version.V22)
        load_sap_batch_input(slow, tiny_data)
        fast = R3System(R3Version.V22)
        load_sap_fast(fast, tiny_data)
        slow_rows = sorted(
            r for _id, r in slow.db.catalog.table("vbap").heap.scan()
        )
        fast_rows = sorted(
            r for _id, r in fast.db.catalog.table("vbap").heap.scan()
        )
        assert slow_rows == fast_rows

    def test_batch_input_much_slower_than_bulk(self, tiny_data):
        slow = R3System(R3Version.V22)
        span = slow.measure()
        load_sap_batch_input(slow, tiny_data)
        batch_time = span.stop()
        fast = R3System(R3Version.V22)
        span = fast.measure()
        load_sap_fast(fast, tiny_data, analyze=False)
        bulk_time = span.stop()
        assert batch_time > 10 * bulk_time
