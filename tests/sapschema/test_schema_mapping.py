import pytest

from repro.r3.ddic import TableKind
from repro.sapschema.mapping import KeyCodec, order_documents
from repro.sapschema.tables import SAP_TABLE_INFO
from repro.sapschema.views import JOIN_VIEWS


class TestTableInventory:
    def test_seventeen_tables(self):
        """The paper's Table 1: exactly 17 SAP tables store the data."""
        assert len(SAP_TABLE_INFO) == 17

    def test_paper_table_names(self):
        expected = {
            "t005", "t005t", "t005u", "mara", "makt", "a004", "konp",
            "lfa1", "eina", "eine", "ausp", "kna1", "vbak", "vbap",
            "vbep", "konv", "stxl",
        }
        assert set(SAP_TABLE_INFO) == expected

    def test_default_encapsulation(self):
        assert SAP_TABLE_INFO["a004"].kind is TableKind.POOL
        assert SAP_TABLE_INFO["konv"].kind is TableKind.CLUSTER
        transparent = [
            info for info in SAP_TABLE_INFO.values()
            if info.kind is TableKind.TRANSPARENT
        ]
        assert len(transparent) == 15

    def test_every_table_has_fillers(self):
        """The business fields that inflate the database exist on every
        large table."""
        for name in ("mara", "lfa1", "kna1", "vbak", "vbap", "vbep",
                     "konv"):
            assert len(SAP_TABLE_INFO[name].filler_fields) >= 5

    def test_sap_keys_are_strings(self):
        from repro.engine.types import TypeKind

        for info in SAP_TABLE_INFO.values():
            for field in info.semantic_fields:
                if field.key and field.name not in ("srtf2",):
                    assert field.sql_type.kind in (TypeKind.CHAR,
                                                   TypeKind.DATE)

    def test_filler_defaults_match_width(self):
        for info in SAP_TABLE_INFO.values():
            assert len(info.filler_defaults) == len(info.filler_fields)


class TestKeyCodec:
    @pytest.mark.parametrize("encode,decode,value", [
        (KeyCodec.vbeln, KeyCodec.orderkey, 123456),
        (KeyCodec.matnr, KeyCodec.partkey, 42),
        (KeyCodec.lifnr, KeyCodec.suppkey, 7),
        (KeyCodec.kunnr, KeyCodec.custkey, 1500),
        (KeyCodec.land1, KeyCodec.nationkey, 24),
        (KeyCodec.posnr, KeyCodec.linenumber, 6),
    ])
    def test_roundtrip(self, encode, decode, value):
        assert decode(encode(value)) == value

    def test_string_keys_preserve_numeric_order(self):
        keys = [KeyCodec.vbeln(k) for k in (1, 9, 10, 99, 100)]
        assert keys == sorted(keys)

    def test_widths(self):
        assert len(KeyCodec.matnr(1)) == 18
        assert len(KeyCodec.vbeln(1)) == 10
        assert len(KeyCodec.knumv(1)) == 10


class TestMapping:
    def test_vertical_partitioning(self, tpcd_data):
        documents = order_documents(tpcd_data)
        assert len(documents) == len(tpcd_data.orders)
        doc = documents[0]
        lines = len(doc.vbap)
        assert len(doc.vbep) == lines
        assert len(doc.konv_rows) == 2 * lines  # DISC + TAX per item
        assert len(doc.stxl) == 1 + lines       # order + item comments

    def test_konv_encodes_discount_and_tax(self, tpcd_data):
        lineitem = tpcd_data.lineitem[0]
        documents = order_documents(tpcd_data)
        doc = next(d for d in documents if d.orderkey == lineitem[0])
        disc_row = doc.konv_rows[0]
        tax_row = doc.konv_rows[1]
        assert disc_row[4] == "DISC" and tax_row[4] == "TAX"
        assert disc_row[5] == pytest.approx(-lineitem[6] * 1000)
        assert tax_row[5] == pytest.approx(lineitem[7] * 1000)

    def test_vbak_carries_knumv_link(self, tpcd_data):
        doc = order_documents(tpcd_data)[0]
        knumv = doc.vbak[8]
        assert knumv == KeyCodec.knumv(doc.orderkey)
        assert all(row[0] == knumv for row in doc.konv_rows)

    def test_join_views_cover_transparent_pkfk_only(self):
        assert "konv" not in " ".join(JOIN_VIEWS.values()).lower()
