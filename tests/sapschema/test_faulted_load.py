"""Fault-injected Table-3 load: determinism and crash recovery.

The determinism test guards the whole reproduction's reproducibility
claim: same seed + same fault profile must give bit-identical simulated
clocks, metrics and row counts, or none of the paper-shape assertions
mean anything.
"""

import pytest

from repro.r3.appserver import R3System, R3Version
from repro.r3.batchinput import LoadJournal
from repro.r3.errors import WorkProcessCrash
from repro.sapschema.loader import load_sap_batch_input
from repro.sim.faults import FaultProfile
from repro.tpcd.dbgen import generate

SF = 0.0002
COMMIT_INTERVAL = 10

FAULTY = FaultProfile(name="faulty", seed=1996, disk_error_every=800,
                      connection_drop_every=400, jitter=0.25,
                      crash_at_s=(120.0,))


@pytest.fixture(scope="module")
def data():
    return generate(SF)


def _row_counts(r3):
    return {name: r3.db.catalog.table(name).row_count
            for name in r3.db.catalog.table_names}


def _crash_and_recover(data):
    """One full faulted load: crash at 120s simulated, then resume."""
    r3 = R3System(R3Version.V22)
    r3.attach_faults(FAULTY)
    journal = LoadJournal()
    timings = None
    with pytest.raises(WorkProcessCrash):
        timings = load_sap_batch_input(
            r3, data, commit_interval=COMMIT_INTERVAL, journal=journal)
    timings = load_sap_batch_input(
        r3, data, commit_interval=COMMIT_INTERVAL, journal=journal)
    return r3, timings


class TestDeterminism:
    def test_same_seed_same_profile_identical_runs(self, data):
        first, _ = _crash_and_recover(data)
        second, _ = _crash_and_recover(data)
        assert first.clock.now == second.clock.now
        assert first.metrics.all() == second.metrics.all()
        assert _row_counts(first) == _row_counts(second)

    def test_faults_actually_fired(self, data):
        r3, _ = _crash_and_recover(data)
        metrics = r3.metrics
        assert metrics.get("faults.crashes_injected") == 1
        assert metrics.get("faults.disk_io_injected") > 0
        assert metrics.get("faults.connection_drops_injected") > 0
        assert metrics.get("batchinput.checkpoints") > 0


class TestRecovery:
    def test_recovered_load_matches_fault_free_rows(self, data):
        fault_free = R3System(R3Version.V22)
        load_sap_batch_input(fault_free, data)
        recovered, _ = _crash_and_recover(data)
        assert _row_counts(recovered) == _row_counts(fault_free)

    def test_checkpoint_overhead_is_small(self, data):
        plain = R3System(R3Version.V22)
        load_sap_batch_input(plain, data)
        checkpointed = R3System(R3Version.V22)
        load_sap_batch_input(checkpointed, data,
                             commit_interval=COMMIT_INTERVAL)
        overhead = (checkpointed.clock.now - plain.clock.now) \
            / plain.clock.now
        assert 0 <= overhead < 0.05
