"""Shared fixtures: one small TPC-D world reused across the suite.

Session-scoped systems are read-only from the tests' perspective:
experiments that mutate state (update functions, batch input, loading)
build their own throwaway systems at a smaller scale factor.
"""

from __future__ import annotations

import pytest

from repro.core.powertest import build_sap_system
from repro.r3.appserver import R3Version
from repro.tpcd.dbgen import generate, generate_refresh_orders
from repro.tpcd.loader import load_original
from repro.tpcd.queries import build_queries, run_query

#: the suite's shared scale factor (1500 orders, ~6000 lineitems)
SF = 0.001


@pytest.fixture(scope="session")
def tpcd_data():
    return generate(SF)


@pytest.fixture(scope="session")
def refresh_data(tpcd_data):
    return generate_refresh_orders(tpcd_data)


@pytest.fixture(scope="session")
def rdbms_db(tpcd_data):
    return load_original(tpcd_data)


@pytest.fixture(scope="session")
def reference_results(rdbms_db):
    """{query number: rows} from the isolated-RDBMS baseline."""
    specs = build_queries(SF)
    return {
        number: list(run_query(rdbms_db, specs[number]).rows)
        for number in specs
    }


@pytest.fixture(scope="session")
def r3_22(tpcd_data):
    return build_sap_system(tpcd_data, R3Version.V22)


@pytest.fixture(scope="session")
def r3_30(tpcd_data):
    return build_sap_system(tpcd_data, R3Version.V30)
