from repro.tpcd.dbgen import delete_keys, generate, generate_refresh_orders
from repro.tpcd.loader import load_original
from repro.tpcd.updates import run_uf1_rdbms, run_uf2_rdbms


def _fresh():
    data = generate(0.0005, seed=11)
    return data, load_original(data)


class TestUpdateFunctions:
    def test_uf1_inserts_refresh_set(self):
        data, db = _fresh()
        refresh = generate_refresh_orders(data)
        before = db.execute("SELECT COUNT(*) FROM orders").scalar()
        inserted = run_uf1_rdbms(db, refresh)
        after = db.execute("SELECT COUNT(*) FROM orders").scalar()
        assert after == before + len(refresh.orders)
        assert inserted == len(refresh.orders) + len(refresh.lineitem)

    def test_uf2_deletes_orders_and_lineitems(self):
        data, db = _fresh()
        doomed = delete_keys(data)
        run_uf2_rdbms(db, doomed)
        for orderkey in doomed:
            assert db.execute(
                "SELECT COUNT(*) FROM orders WHERE o_orderkey = ?",
                (orderkey,),
            ).scalar() == 0
            assert db.execute(
                "SELECT COUNT(*) FROM lineitem WHERE l_orderkey = ?",
                (orderkey,),
            ).scalar() == 0

    def test_uf1_then_uf2_roundtrip(self):
        data, db = _fresh()
        refresh = generate_refresh_orders(data)
        before_orders = db.execute("SELECT COUNT(*) FROM orders").scalar()
        before_items = db.execute("SELECT COUNT(*) FROM lineitem").scalar()
        run_uf1_rdbms(db, refresh)
        run_uf2_rdbms(db, [row[0] for row in refresh.orders])
        assert db.execute("SELECT COUNT(*) FROM orders").scalar() == \
            before_orders
        assert db.execute("SELECT COUNT(*) FROM lineitem").scalar() == \
            before_items


class TestAnswersHelpers:
    def test_rows_match_rounding(self):
        from repro.tpcd.answers import rows_match

        assert rows_match([(1.0000001, "a")], [(1.0, "a ")])
        assert not rows_match([(1.5, "a")], [(1.0, "a")])

    def test_unordered_comparison(self):
        from repro.tpcd.answers import rows_match

        assert rows_match([(1,), (2,)], [(2,), (1,)], ordered=False)
        assert not rows_match([(1,), (2,)], [(2,), (1,)], ordered=True)

    def test_assert_rows_match_raises_with_context(self):
        import pytest

        from repro.tpcd.answers import assert_rows_match

        with pytest.raises(AssertionError, match="mismatch"):
            assert_rows_match([(1,)], [(2,)], label="Qx")

    def test_none_handling_in_unordered_sort(self):
        from repro.tpcd.answers import canonical_rows

        rows = canonical_rows([(None,), (1,)], ordered=False)
        assert len(rows) == 2
