
import pytest
from hypothesis import given, settings, strategies as st

from repro.tpcd.dbgen import (
    CURRENT_DATE,
    END_DATE,
    NATIONS,
    REGIONS,
    START_DATE,
    delete_keys,
    generate,
    generate_refresh_orders,
)


@pytest.fixture(scope="module")
def data():
    return generate(0.001, seed=7)


class TestCardinalities:
    def test_fixed_tables(self, data):
        assert len(data.region) == 5
        assert len(data.nation) == 25

    def test_scaled_tables(self, data):
        assert len(data.supplier) == 10
        assert len(data.part) == 200
        assert len(data.customer) == 150
        assert len(data.orders) == 1500

    def test_partsupp_four_per_part(self, data):
        assert len(data.partsupp) == 4 * len(data.part)

    def test_lineitems_one_to_seven_per_order(self, data):
        per_order: dict[int, int] = {}
        for row in data.lineitem:
            per_order[row[0]] = per_order.get(row[0], 0) + 1
        assert set(per_order) == {row[0] for row in data.orders}
        assert all(1 <= n <= 7 for n in per_order.values())

    def test_row_counts_helper(self, data):
        counts = data.row_counts()
        assert counts["lineitem"] == len(data.lineitem)

    def test_zero_scale_rejected(self):
        with pytest.raises(ValueError):
            generate(0)


class TestDomains:
    def test_nation_keys_reference_regions(self, data):
        region_keys = {row[0] for row in data.region}
        assert all(row[2] in region_keys for row in data.nation)

    def test_region_names(self, data):
        assert [row[1] for row in data.region] == REGIONS

    def test_nation_names(self, data):
        assert [row[1] for row in data.nation] == [n for n, _r in NATIONS]

    def test_lineitem_value_domains(self, data):
        for row in data.lineitem:
            assert 1 <= row[4] <= 50          # quantity
            assert 0.0 <= row[6] <= 0.10      # discount
            assert 0.0 <= row[7] <= 0.08      # tax
            assert row[8] in ("R", "A", "N")
            assert row[9] in ("F", "O")

    def test_date_consistency(self, data):
        orderdates = {row[0]: row[4] for row in data.orders}
        for row in data.lineitem:
            orderdate = orderdates[row[0]]
            assert START_DATE <= orderdate <= END_DATE
            shipdate, receiptdate = row[10], row[12]
            assert shipdate > orderdate
            assert receiptdate > shipdate

    def test_returnflag_follows_receiptdate(self, data):
        for row in data.lineitem:
            if row[12] <= CURRENT_DATE:
                assert row[8] in ("R", "A")
            else:
                assert row[8] == "N"

    def test_linestatus_follows_shipdate(self, data):
        for row in data.lineitem:
            assert row[9] == ("F" if row[10] <= CURRENT_DATE else "O")

    def test_totalprice_matches_lineitems(self, data):
        by_order: dict[int, float] = {}
        for row in data.lineitem:
            value = row[5] * (1 + row[7]) * (1 - row[6])
            by_order[row[0]] = by_order.get(row[0], 0.0) + value
        for order in data.orders[:50]:
            assert order[3] == pytest.approx(by_order[order[0]], abs=0.02)

    def test_orderstatus_from_linestatus(self, data):
        statuses: dict[int, set] = {}
        for row in data.lineitem:
            statuses.setdefault(row[0], set()).add(row[9])
        for order in data.orders:
            expected = statuses[order[0]]
            if expected == {"F"}:
                assert order[2] == "F"
            elif expected == {"O"}:
                assert order[2] == "O"
            else:
                assert order[2] == "P"

    def test_foreign_keys_valid(self, data):
        partkeys = {row[0] for row in data.part}
        suppkeys = {row[0] for row in data.supplier}
        custkeys = {row[0] for row in data.customer}
        assert all(row[1] in custkeys for row in data.orders)
        for row in data.lineitem[:500]:
            assert row[1] in partkeys and row[2] in suppkeys

    def test_lineitem_supplier_is_a_partsupp_supplier(self, data):
        pairs = {(row[0], row[1]) for row in data.partsupp}
        for row in data.lineitem[:500]:
            assert (row[1], row[2]) in pairs


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = generate(0.0005, seed=3)
        b = generate(0.0005, seed=3)
        assert a.lineitem == b.lineitem
        assert a.orders == b.orders

    def test_different_seed_differs(self):
        a = generate(0.0005, seed=3)
        b = generate(0.0005, seed=4)
        assert a.lineitem != b.lineitem


class TestRefresh:
    def test_refresh_orders_beyond_max_key(self, data):
        refresh = generate_refresh_orders(data)
        assert min(row[0] for row in refresh.orders) == \
            data.max_orderkey + 1
        assert len(refresh.orders) == max(1, round(len(data.orders)
                                                   * 0.001))

    def test_delete_keys_exist(self, data):
        keys = delete_keys(data)
        existing = {row[0] for row in data.orders}
        assert all(k in existing for k in keys)
        assert len(keys) == len(set(keys))


@settings(max_examples=10, deadline=None)
@given(st.floats(min_value=0.0002, max_value=0.002))
def test_scaling_is_monotone_and_valid(sf):
    data = generate(sf, seed=1)
    assert len(data.orders) == max(1, round(1_500_000 * sf))
    assert len(data.lineitem) >= len(data.orders)
