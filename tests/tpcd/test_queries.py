
import pytest

from repro.tpcd.queries import build_queries, run_query
from tests.conftest import SF


@pytest.fixture(scope="module")
def specs():
    return build_queries(SF)


class TestQuerySuite:
    def test_seventeen_queries(self, specs):
        assert sorted(specs) == list(range(1, 18))

    def test_q11_fraction_scales(self):
        a = build_queries(0.01)[11].sql
        b = build_queries(0.1)[11].sql
        assert a != b and "0.01" in a

    @pytest.mark.parametrize("number", range(1, 18))
    def test_queries_run(self, rdbms_db, specs, number):
        result = run_query(rdbms_db, specs[number])
        assert isinstance(result.rows, list)

    def test_q1_shape(self, reference_results):
        rows = reference_results[1]
        # group keys are (returnflag, linestatus); counts positive
        assert 1 <= len(rows) <= 6
        for row in rows:
            assert row[0] in ("A", "N", "R") and row[1] in ("F", "O")
            assert row[9] > 0
            assert row[2] >= row[9]  # sum_qty >= count (qty >= 1)

    def test_q1_internal_consistency(self, reference_results):
        for row in reference_results[1]:
            assert row[6] == pytest.approx(row[2] / row[9])  # avg_qty
            assert row[4] <= row[3]  # discounted <= base

    def test_q3_limit_and_order(self, reference_results):
        rows = reference_results[3]
        assert len(rows) <= 10
        revenues = [row[1] for row in rows]
        assert revenues == sorted(revenues, reverse=True)

    def test_q4_priorities(self, reference_results):
        for prior, count in reference_results[4]:
            assert count > 0
            assert prior[0] in "12345"

    def test_q6_is_single_value(self, reference_results):
        assert len(reference_results[6]) == 1

    def test_q14_percentage(self, reference_results):
        value = reference_results[14][0][0]
        if value is not None:
            assert 0.0 <= value <= 100.0

    def test_q15_view_cleaned_up(self, rdbms_db, specs):
        run_query(rdbms_db, specs[15])
        assert not rdbms_db.catalog.has_view("revenue")

    def test_q15_view_cleaned_up_on_error(self, rdbms_db, specs):
        import copy

        broken = copy.deepcopy(specs[15])
        broken.sql = "SELECT nonsense FROM nowhere"
        with pytest.raises(Exception):
            run_query(rdbms_db, broken)
        assert not rdbms_db.catalog.has_view("revenue")

    def test_q16_counts_distinct_suppliers(self, reference_results):
        for row in reference_results[16]:
            assert 0 < row[3] <= 10  # at most all suppliers at SF 0.001

    def test_q2_ordering(self, reference_results):
        rows = reference_results[2]
        balances = [row[0] for row in rows]
        assert balances == sorted(balances, reverse=True)

    def test_deviations_documented(self, specs):
        assert specs[13].deviation is not None
        assert specs[8].deviation is not None
