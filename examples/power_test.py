#!/usr/bin/env python3
"""Reproduce the paper's Table 4 or Table 5: the full TPC-D power test.

Run:  python examples/power_test.py [--release 2.2|3.0] [--sf 0.002]
      [--no-updates]

Prints the paper-style table (RDBMS / Native SQL / Open SQL, Q1-Q17 +
UF1/UF2) with simulated durations, then the headline ratios next to the
paper's published ones.
"""

import argparse

from repro.core import paperdata
from repro.core.powertest import run_power_test
from repro.r3.appserver import R3Version


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--release", choices=["2.2", "3.0"],
                        default="3.0")
    parser.add_argument("--sf", type=float, default=0.002)
    parser.add_argument("--no-updates", action="store_true")
    args = parser.parse_args()

    version = R3Version.V22 if args.release == "2.2" else R3Version.V30
    paper = (paperdata.TABLE4_22G_S if version is R3Version.V22
             else paperdata.TABLE5_30E_S)

    print(f"running the TPC-D power test, R/3 {version.value}, "
          f"SF={args.sf} (this takes a minute or two) ...")
    result = run_power_test(
        args.sf, version, include_updates=not args.no_updates
    )
    print()
    print(result.render())
    print()
    rdbms = result.total("rdbms", queries_only=True)
    paper_rdbms = paperdata.total(paper["rdbms"], queries_only=True)
    print("query-total slowdown vs the isolated RDBMS:")
    for variant in ("native", "open"):
        measured = result.total(variant, queries_only=True) / rdbms
        published = paperdata.total(paper[variant], queries_only=True) \
            / paper_rdbms
        print(f"  {variant:>6}: measured {measured:5.1f}x   "
              f"paper {published:4.1f}x")


if __name__ == "__main__":
    main()
