#!/usr/bin/env python3
"""The Table 6 optimizer trap, interactively.

Open SQL translates every literal into a parameter marker so the cursor
cache can reuse plans.  The price: the optimizer never sees the value,
cannot estimate selectivity, and falls back to "there is an index, use
it" — catastrophic when the predicate selects the whole table.

Run:  python examples/optimizer_trap.py [scale_factor]
"""

import sys

from repro.core.experiments import table6_plan_choice
from repro.core.powertest import build_sap_system
from repro.r3.appserver import R3Version
from repro.sim.clock import format_duration
from repro.tpcd.dbgen import generate


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.002
    print(f"building an R/3 3.0E system at SF={scale_factor} ...")
    r3 = build_sap_system(generate(scale_factor), R3Version.V30)

    print("running the Figure 3 reports (index on VBAP.KWMENG) ...\n")
    result = table6_plan_choice(r3)

    print("Native SQL report — EXEC SQL ships the literal:")
    print(f"    KWMENG < 0    -> {result.rows[('native', 'high')]} rows "
          f"in {format_duration(result.times[('native', 'high')])}")
    print(f"    KWMENG < 9999 -> {result.rows[('native', 'low')]} rows "
          f"in {format_duration(result.times[('native', 'low')])}")
    print("    plan for the non-selective case:")
    for line in result.plans["native_low"].splitlines():
        print(f"      {line}")
    print()
    print("Open SQL report — translated to KWMENG < ? :")
    print(f"    KWMENG < 0    -> {result.rows[('open', 'high')]} rows "
          f"in {format_duration(result.times[('open', 'high')])}")
    print(f"    KWMENG < 9999 -> {result.rows[('open', 'low')]} rows "
          f"in {format_duration(result.times[('open', 'low')])}")
    print("    plan for the non-selective case:")
    for line in result.plans["open_low"].splitlines():
        print(f"      {line}")
    print()
    ratio = result.times[("open", "low")] / \
        max(result.times[("native", "low")], 1e-9)
    print(f"blind plan penalty: {ratio:.0f}x "
          f"(the paper measured 4m56s vs 1h50m, ~22x)")


if __name__ == "__main__":
    main()
