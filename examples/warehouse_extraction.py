#!/usr/bin/env python3
"""Section 5 / Table 9: building a data warehouse from the SAP database.

Runs the eight Open SQL extraction reports that reconstruct the
original TPC-D tables as ASCII, and compares the total cost against a
full Open SQL power test — the paper's argument that a warehouse only
pays off under a much heavier analytical load.

Run:  python examples/warehouse_extraction.py [scale_factor]
"""

import sys

from repro.core.powertest import build_sap_system
from repro.r3.appserver import R3Version
from repro.reports import open30
from repro.sim.clock import format_duration
from repro.tpcd.dbgen import generate
from repro.warehouse.extract import extract_all


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.002
    print(f"building an R/3 3.0E system at SF={scale_factor} ...")
    r3 = build_sap_system(generate(scale_factor), R3Version.V30)

    print("running the extraction reports ...\n")
    results = extract_all(r3, keep_lines=True)
    total = 0.0
    for name in ("REGION", "NATION", "SUPPLIER", "PART", "PARTSUPP",
                 "CUSTOMER", "ORDER", "LINEITEM"):
        entry = results[name]
        total += entry.elapsed_s
        sample = entry.lines[0][:60] if entry.lines else ""
        print(f"  {name:<10} {entry.rows:>7} rows  "
              f"{format_duration(entry.elapsed_s):>10}   e.g. {sample}")
    print(f"  {'total':<10} {'':>7}       {format_duration(total):>10}")

    print("\nfor comparison: one Open SQL power test on the same data ...")
    suite = open30.make_queries(scale_factor)
    span = r3.measure()
    for number in range(1, 18):
        suite[number](r3)
    power = span.stop()
    print(f"  power test total: {format_duration(power)}")
    print(f"\nextraction / power-test ratio: {total / power:.2f} "
          f"(paper: ~1.0 — 6h05m vs 6h06m)")


if __name__ == "__main__":
    main()
