#!/usr/bin/env python3
"""Quickstart: the paper's core finding in two minutes.

Generates a small TPC-D database, loads it three ways — isolated RDBMS,
SAP R/3 via Native SQL, SAP R/3 via Open SQL — and runs one query (Q6,
the forecasting-revenue query) on each, printing the simulated running
times.  On the original schema Q6 is a single-table scan; inside SAP it
is a 4-way join whose discount rates live in the KONV pricing table.

Run:  python examples/quickstart.py [scale_factor]
"""

import sys

from repro.core.powertest import build_sap_system
from repro.r3.appserver import R3Version
from repro.reports import native30, open30
from repro.sim.clock import format_duration
from repro.tpcd.dbgen import generate
from repro.tpcd.loader import load_original
from repro.tpcd.queries import build_queries, run_query


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.002
    print(f"generating TPC-D data at SF={scale_factor} ...")
    data = generate(scale_factor)
    print(f"  {data.row_counts()}")

    print("loading the isolated RDBMS (original 8-table schema) ...")
    db = load_original(data)
    print("loading SAP R/3 3.0E (17-table business schema) ...")
    r3 = build_sap_system(data, R3Version.V30)

    spec = build_queries(scale_factor)[6]
    span = db.clock.span()
    reference = run_query(db, spec)
    rdbms_s = span.stop()

    span = r3.measure()
    native_rows = native30.q6(r3)
    native_s = span.stop()

    span = r3.measure()
    open_rows = open30.q6(r3)
    open_s = span.stop()

    assert [tuple(r) for r in reference.rows] is not None
    print()
    print("Q6 (forecasting revenue change), simulated running time:")
    print(f"  isolated RDBMS : {format_duration(rdbms_s):>10}   "
          f"revenue = {reference.scalar():,.2f}")
    print(f"  SAP Native SQL : {format_duration(native_s):>10}   "
          f"revenue = {native_rows[0][0]:,.2f}")
    print(f"  SAP Open SQL   : {format_duration(open_s):>10}   "
          f"revenue = {open_rows[0][0]:,.2f}")
    print()
    print("Same answer, very different cost: that gap — benchmark the")
    print("application system, not the naked database — is the paper.")


if __name__ == "__main__":
    main()
