#!/usr/bin/env python3
"""The Table 8 caching study: buffering MARA in the application server.

A sales clerk entering orders touches the same parts over and over;
SAP R/3 can keep those records in the application server and skip the
database entirely.  This example replays the paper's Figure 5 report —
one SELECT SINGLE against MARA per VBAP row — under three buffer
configurations.

Run:  python examples/caching_study.py [scale_factor]
"""

import sys

from repro.core.experiments import table8_caching
from repro.core.powertest import build_sap_system
from repro.r3.appserver import R3Version
from repro.sim.clock import format_duration
from repro.tpcd.dbgen import generate


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.002
    print(f"building an R/3 3.0E system at SF={scale_factor} ...")
    r3 = build_sap_system(generate(scale_factor), R3Version.V30)

    print("replaying the Figure 5 report under three buffer sizes ...\n")
    result = table8_caching(r3)

    print(f"{result.lookups} small queries against MARA "
          f"(paper: 1.2 million at SF=0.2)\n")
    print(f"{'cache':<8} {'hit ratio':>10} {'cost for querying MARA':>24}")
    for label in ("none", "small", "large"):
        hit_ratio, cost = result.configs[label]
        print(f"{label:<8} {hit_ratio:>9.0%} "
              f"{format_duration(cost):>24}")
    print()
    none_cost = result.configs["none"][1]
    large_cost = result.configs["large"][1]
    print(f"a buffer that holds the whole table wins "
          f"{none_cost / max(large_cost, 1e-9):.1f}x "
          f"(paper: 3x); a thrashing one is a wash — "
          f"management overhead eats the few hits.")


if __name__ == "__main__":
    main()
