#!/usr/bin/env python3
"""An SD-style order-entry run: SAP's own benchmark flavour.

The paper distinguishes TPC-D from SAP's standard application
benchmarks [LM95], which measure OLTP-style business processes such as
order entry (the famous SD benchmark).  This example runs that kind of
workload on the simulator: a stream of sales-order dialog transactions
(screens, consistency checks, inserts) with MARA buffered in the
application server — and shows why the paper's decision-support story
is a different world from the OLTP numbers vendors publish.

Run:  python examples/sd_order_entry.py [n_orders]
"""

import random
import sys

from repro.core.powertest import build_sap_system
from repro.r3.appserver import R3Version
from repro.r3.batchinput import BatchInputSession
from repro.sapschema.loader import order_transactions
from repro.sim.clock import format_duration
from repro.tpcd.dbgen import generate, generate_refresh_orders


def main() -> None:
    n_orders = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    print("building an R/3 3.0E system with master data ...")
    data = generate(0.002)
    r3 = build_sap_system(data, R3Version.V30)

    # The dialog users' part lookups hit the table buffer (Table 8's
    # point, applied to OLTP where it actually belongs).
    mara_bytes = r3.db.catalog.table("mara").data_bytes
    r3.buffers.configure("mara", 2 * mara_bytes)

    print(f"entering {n_orders} sales orders through dialog "
          f"transactions ...")
    rng = random.Random(4711)
    refresh = generate_refresh_orders(data, fraction=n_orders / 3000,
                                      seed=rng.randrange(1 << 30))
    session = BatchInputSession(r3)
    span = r3.measure()
    transactions = 0
    for transaction in order_transactions(refresh):
        session.run(transaction)
        transactions += 1
        if transactions >= n_orders:
            break
    elapsed = span.stop()

    stats = r3.buffers.stats("mara")
    dialog_steps = session.stats.checks_run + \
        r3.metrics.get("batchinput.screens")
    print()
    print(f"orders entered          : {session.stats.transactions}")
    print(f"records written         : {session.stats.records_inserted}")
    print(f"simulated elapsed       : {format_duration(elapsed)}")
    per_order = elapsed / max(session.stats.transactions, 1)
    print(f"per order               : {per_order:.2f}s "
          f"(SD-style dialog response)")
    print(f"throughput              : "
          f"{3600 / per_order:,.0f} orders/hour")
    if stats:
        print(f"MARA buffer hit ratio   : {stats.hit_ratio:.0%} "
              f"over {stats.lookups} lookups")
    print()
    print("OLTP order entry is seconds per transaction — the workload")
    print("SAP R/3 is built for.  The same system needed hours for one")
    print("TPC-D power test: benchmark what your users actually run.")


if __name__ == "__main__":
    main()
