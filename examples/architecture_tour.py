#!/usr/bin/env python3
"""Figures 1 and 2: a tour of the simulated SAP R/3 architecture.

Walks through the three-tier structure, the data dictionary's three
table kinds, and the two database interfaces — showing for each access
path what actually happens underneath (translated SQL, cluster
decodes, interface crossings).

Run:  python examples/architecture_tour.py
"""

from repro.core.powertest import build_sap_system
from repro.r3.appserver import R3Version
from repro.r3.ddic import TableKind
from repro.r3.opensql.parser import parse_open_sql
from repro.r3.opensql.translate import translate
from repro.tpcd.dbgen import generate


def main() -> None:
    print(__doc__)
    print("building a small R/3 2.2G system ...\n")
    r3 = build_sap_system(generate(0.0005), R3Version.V22)

    print("=" * 64)
    print("Figure 1 — three-tier client/server architecture")
    print("=" * 64)
    print("""
    presentation   (not simulated: the GUI)
         |
    application    R3System: ABAP runtime, Open SQL, Native SQL,
         |         data dictionary, table buffers, batch input
         |
    database       repro.engine.Database: SQL parser, cost-based
                   optimizer, volcano executor, buffer pool
    """)

    print("=" * 64)
    print("Figure 2 — the ABAP/4 database interface")
    print("=" * 64)
    kinds = {kind: [] for kind in TableKind}
    for table in r3.ddic.tables.values():
        kinds[table.kind].append(table.name.upper())
    print(f"\n  data dictionary: {r3.table_count()} logical tables")
    for kind, names in kinds.items():
        print(f"    {kind.value:<12} {', '.join(sorted(names))}")

    print("\n  Open SQL path — dictionary-mediated, parameterized:")
    statement = ("SELECT matnr kwmeng FROM vbap "
                 "WHERE kwmeng > 30 AND vsart = 'MAIL'")
    print(f"    report writes : {statement}")
    translation = translate(
        parse_open_sql(statement),
        lambda t: r3.ddic.lookup(t).field_names,
        lambda t: True,
    )
    print(f"    RDBMS receives: {translation.sql}")
    print(f"    bound values  : "
          f"{translation.bind(r3.client, {})}")

    print("\n  Native SQL path — passthrough, literals intact:")
    native = ("SELECT matnr, kwmeng FROM vbap "
              "WHERE mandt = '301' AND kwmeng > 30")
    print(f"    report writes : EXEC SQL. {native} ENDEXEC.")
    print("    (the author must remember MANDT; pool/cluster tables")
    print("     are invisible on this path)")

    print("\n  Encapsulated access — the KONV cluster in 2.2:")
    snap = r3.metrics.snapshot()
    result = r3.open_sql.select(
        "SELECT kposn kschl kbetr FROM konv WHERE knumv = :k",
        {"k": "V000000001"},
    )
    print(f"    SELECT ... FROM konv WHERE knumv = :k "
          f"-> {len(result)} condition rows")
    print(f"    physical work: {snap.get('dbif.roundtrips'):.0f} round "
          f"trip(s), {snap.get('abap.rows_decoded'):.0f} rows decoded "
          f"from VARDATA by the app server")


if __name__ == "__main__":
    main()
